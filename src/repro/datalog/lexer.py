"""Hand-written tokenizer for NDlog / SeNDlog source text.

The token stream is consumed by :mod:`repro.datalog.parser`.  The lexer keeps
line and column information so parse errors point at the offending source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.datalog.errors import ParseError

# Token kinds.  Keeping them as plain strings keeps match statements readable.
IDENT = "IDENT"          # lowercase-leading identifier (predicate, function, constant)
VARIABLE = "VARIABLE"    # uppercase-leading identifier
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"        # punctuation and operators
KEYWORD = "KEYWORD"      # says, at, materialize, keys, infinity
EOF = "EOF"

KEYWORDS = {"says", "at", "materialize", "keys", "infinity"}

# Multi-character operators must be listed before their prefixes.
SYMBOLS = [
    ":=", ":-", "<=", ">=", "==", "!=",
    "(", ")", ",", ".", "@", "<", ">", "=", "!", ":", "+", "-", "*", "/",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: str
    text: str
    line: int
    column: int

    @property
    def end_column(self) -> int:
        """Column one past the token's last character (same line).

        String tokens account for their surrounding quotes, which are not
        part of ``text``.
        """
        width = len(self.text) or 1
        if self.kind == STRING:
            width = len(self.text) + 2
        return self.column + width

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


class Lexer:
    """Tokenizes NDlog / SeNDlog source text.

    Comments start with ``#`` or ``//`` and run to end of line.
    """

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    # -- public API ---------------------------------------------------------

    def tokens(self) -> List[Token]:
        """Return the full token list, ending with an EOF token."""
        result = list(self._iter_tokens())
        result.append(Token(EOF, "", self._line, self._column))
        return result

    # -- internals ----------------------------------------------------------

    def _iter_tokens(self) -> Iterator[Token]:
        while self._pos < len(self._source):
            char = self._source[self._pos]
            if char in " \t\r":
                self._advance(1)
            elif char == "\n":
                self._advance_newline()
            elif char == "#" or self._source.startswith("//", self._pos):
                self._skip_comment()
            elif char == '"' or char == "'":
                yield self._read_string(char)
            elif char.isdigit():
                yield self._read_number()
            elif char.isalpha() or char == "_":
                yield self._read_identifier()
            else:
                yield self._read_symbol()

    def _advance(self, count: int) -> None:
        self._pos += count
        self._column += count

    def _advance_newline(self) -> None:
        self._pos += 1
        self._line += 1
        self._column = 1

    def _skip_comment(self) -> None:
        while self._pos < len(self._source) and self._source[self._pos] != "\n":
            self._pos += 1

    def _read_string(self, quote: str) -> Token:
        line, column = self._line, self._column
        self._advance(1)
        start = self._pos
        while self._pos < len(self._source) and self._source[self._pos] != quote:
            if self._source[self._pos] == "\n":
                raise ParseError("unterminated string literal", line, column)
            self._advance(1)
        if self._pos >= len(self._source):
            raise ParseError("unterminated string literal", line, column)
        text = self._source[start:self._pos]
        self._advance(1)  # closing quote
        return Token(STRING, text, line, column)

    def _read_number(self) -> Token:
        line, column = self._line, self._column
        start = self._pos
        seen_dot = False
        while self._pos < len(self._source):
            char = self._source[self._pos]
            if char.isdigit():
                self._advance(1)
            elif (
                char == "."
                and not seen_dot
                and self._pos + 1 < len(self._source)
                and self._source[self._pos + 1].isdigit()
            ):
                seen_dot = True
                self._advance(1)
            else:
                break
        return Token(NUMBER, self._source[start:self._pos], line, column)

    def _read_identifier(self) -> Token:
        line, column = self._line, self._column
        start = self._pos
        while self._pos < len(self._source) and (
            self._source[self._pos].isalnum() or self._source[self._pos] == "_"
        ):
            self._advance(1)
        text = self._source[start:self._pos]
        lowered = text.lower()
        if lowered in KEYWORDS:
            return Token(KEYWORD, lowered, line, column)
        if text[0].isupper():
            return Token(VARIABLE, text, line, column)
        if text[0] == "_" and text[1:2].isupper():
            # Wildcard variables: an underscore-prefixed variable name marks
            # a binding that is intentionally unused (exempt from the
            # unused-variable lint warning), e.g. ``link(@S, D, _Cost)``.
            return Token(VARIABLE, text, line, column)
        return Token(IDENT, text, line, column)

    def _read_symbol(self) -> Token:
        line, column = self._line, self._column
        for symbol in SYMBOLS:
            if self._source.startswith(symbol, self._pos):
                self._advance(len(symbol))
                return Token(SYMBOL, symbol, line, column)
        raise ParseError(
            f"unexpected character {self._source[self._pos]!r}", line, column
        )


def tokenize(source: str) -> List[Token]:
    """Tokenize *source* and return the token list (ending with EOF)."""
    return Lexer(source).tokens()
