"""Security principals.

A principal is the unit of trust in SeNDlog (Section 2.2): every node in the
network acts as (at least) one principal, rules execute within a principal's
context, and exported tuples are asserted by — and attributed to — a
principal via ``says``.

Section 4.5 of the paper additionally gives principals *security levels* so
that quantifiable provenance can compute the trust level of a derivation
(``max`` over alternative derivations of the ``min`` over joined facts).
Those levels live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

DEFAULT_SECURITY_LEVEL = 1


@dataclass(frozen=True)
class Principal:
    """A security principal.

    Attributes
    ----------
    name:
        Unique principal name; in the network experiments this is the node
        address.
    security_level:
        Trust level used by quantifiable provenance; larger is more trusted.
    """

    name: str
    security_level: int = DEFAULT_SECURITY_LEVEL

    def __str__(self) -> str:
        return self.name


class PrincipalRegistry:
    """Directory of principals and their security levels.

    The registry is the single source of truth the trust-management use case
    and the quantifiable-provenance evaluator consult when mapping a
    principal name to its level.
    """

    def __init__(self, default_level: int = DEFAULT_SECURITY_LEVEL) -> None:
        self._default_level = default_level
        self._principals: Dict[str, Principal] = {}

    def register(self, name: str, security_level: Optional[int] = None) -> Principal:
        """Register *name*, or update its security level when given."""
        existing = self._principals.get(name)
        if existing is not None and security_level is None:
            return existing
        principal = Principal(
            name=name,
            security_level=(
                security_level if security_level is not None else self._default_level
            ),
        )
        self._principals[name] = principal
        return principal

    def register_all(self, names: Iterable[str]) -> None:
        for name in names:
            self.register(name)

    def get(self, name: str) -> Principal:
        """Return the principal, registering it with the default level if unknown."""
        return self._principals.get(name) or self.register(name)

    def security_level(self, name: str) -> int:
        return self.get(name).security_level

    def __contains__(self, name: str) -> bool:
        return name in self._principals

    def __len__(self) -> int:
        return len(self._principals)

    def principals(self) -> Tuple[Principal, ...]:
        return tuple(self._principals.values())

    def names(self) -> Tuple[str, ...]:
        return tuple(self._principals)
