"""Tuple signing and verification pipeline.

The :class:`Authenticator` is what a node engine uses when exporting a
derived tuple to another principal (sign it under the local principal's key)
and when importing a tuple from the network (verify the signature against the
claimed principal's public key).  It implements the three ``says`` modes of
:class:`~repro.security.says.SaysMode` and records counters that feed the
evaluation's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.tuples import Fact
from repro.security.keystore import KeyStore
from repro.security.rsa import sign, verify
from repro.security.says import SaysMode


class AuthenticationError(Exception):
    """Raised when an imported tuple fails authentication."""


@dataclass(frozen=True)
class SignedPayload:
    """The wire form of an exported tuple's security envelope."""

    principal: Optional[str]
    signature: Optional[bytes]

    def size(self) -> int:
        size = 0
        if self.principal is not None:
            size += len(self.principal.encode("utf-8"))
        if self.signature is not None:
            size += len(self.signature)
        return size


@dataclass
class AuthenticatorStats:
    """Counters for signing / verification work performed by one node."""

    tuples_signed: int = 0
    tuples_verified: int = 0
    verification_failures: int = 0


class Authenticator:
    """Per-node implementation of ``says`` export / import."""

    def __init__(self, principal: str, keystore: KeyStore, mode: SaysMode) -> None:
        self.principal = principal
        self.keystore = keystore
        self.mode = mode
        self.stats = AuthenticatorStats()
        if mode.requires_signature and not keystore.has_private_key(principal):
            keystore.create_keypair(principal)

    # -- export ---------------------------------------------------------------

    def export_fact(self, fact: Fact) -> Fact:
        """Attribute (and under SIGNED mode, sign) *fact* as this principal.

        Returns a copy of the fact carrying the ``asserted_by`` attribution
        and, in signed mode, the signature bytes.
        """
        if self.mode is SaysMode.NONE:
            return fact
        if self.mode is SaysMode.CLEARTEXT:
            return fact.with_metadata(asserted_by=self.principal)
        signature = sign(fact.payload(), self.keystore.private_key(self.principal))
        self.stats.tuples_signed += 1
        return fact.with_metadata(asserted_by=self.principal, signature=signature)

    def envelope(self, fact: Fact) -> SignedPayload:
        """The security envelope carried on the wire for *fact*."""
        if self.mode is SaysMode.NONE:
            return SignedPayload(principal=None, signature=None)
        return SignedPayload(principal=fact.asserted_by, signature=fact.signature)

    # -- import ---------------------------------------------------------------

    def import_fact(self, fact: Fact) -> Fact:
        """Verify an incoming fact according to the configured mode.

        Raises :class:`AuthenticationError` when the attribution is missing
        or the signature does not verify.  Under ``NONE`` the fact passes
        through untouched.
        """
        if self.mode is SaysMode.NONE:
            return fact
        if fact.asserted_by is None:
            self.stats.verification_failures += 1
            raise AuthenticationError(
                f"{self.principal}: imported tuple {fact} has no asserting principal"
            )
        if self.mode is SaysMode.CLEARTEXT:
            return fact
        if fact.signature is None:
            self.stats.verification_failures += 1
            raise AuthenticationError(
                f"{self.principal}: imported tuple {fact} is unsigned"
            )
        if not self.keystore.has_public_key(fact.asserted_by):
            self.stats.verification_failures += 1
            raise AuthenticationError(
                f"{self.principal}: no public key for principal {fact.asserted_by!r}"
            )
        self.stats.tuples_verified += 1
        if not verify(
            fact.payload(), fact.signature, self.keystore.public_key(fact.asserted_by)
        ):
            self.stats.verification_failures += 1
            raise AuthenticationError(
                f"{self.principal}: signature check failed for {fact} "
                f"claimed by {fact.asserted_by!r}"
            )
        return fact

    # -- cost model -----------------------------------------------------------

    def wire_overhead(self, fact: Fact) -> int:
        """Bytes the security envelope adds to one exported tuple."""
        return self.mode.header_bytes(self.principal, self.keystore.signature_bytes())
