"""Textbook RSA signatures over SHA-256 digests.

This stands in for the OpenSSL RSA signing used by the paper's modified P2
system.  Signatures are computed as ``digest ** d mod n`` and verified as
``signature ** e mod n == digest``; digests are SHA-256 (via :mod:`hashlib`)
reduced modulo *n*.  Key sizes are configurable so that tests run with small
fast keys while examples can use larger ones.

This is *simulation-grade* cryptography: it exercises the same code path and
cost structure (per-tuple signing, constant-size signatures added to each
message) as the paper's implementation, but no padding scheme is applied and
it must not be used to protect real data.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.security.primes import DEFAULT_SEED, generate_prime

DEFAULT_KEY_BITS = 512
DEFAULT_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA key pair.

    ``n`` and ``e`` form the public key, ``d`` the private exponent.
    ``signature_bytes`` is the wire size of one signature, which the
    bandwidth model charges per signed tuple.

    ``dp``, ``dq`` and ``qinv`` are the precomputed CRT parameters
    (``d mod p-1``, ``d mod q-1``, ``q^-1 mod p``); when present, signing
    uses the Chinese-Remainder shortcut, producing byte-identical signatures
    with two half-size modular exponentiations instead of one full-size one.
    They are optional so externally constructed ``(n, e, d)`` keys keep
    working through the plain path.
    """

    n: int
    e: int
    d: int
    bits: int
    p: Optional[int] = None
    q: Optional[int] = None
    dp: Optional[int] = None
    dq: Optional[int] = None
    qinv: Optional[int] = None

    @property
    def public_key(self) -> Tuple[int, int]:
        return (self.n, self.e)

    @property
    def signature_bytes(self) -> int:
        return (self.bits + 7) // 8


def _egcd(a: int, b: int) -> Tuple[int, int, int]:
    if a == 0:
        return (b, 0, 1)
    g, y, x = _egcd(b % a, a)
    return (g, x - (b // a) * y, y)


def _modinv(a: int, modulus: int) -> int:
    g, x, _ = _egcd(a % modulus, modulus)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % modulus


def generate_keypair(
    bits: int = DEFAULT_KEY_BITS,
    rng: Optional[random.Random] = None,
    public_exponent: int = DEFAULT_PUBLIC_EXPONENT,
) -> RSAKeyPair:
    """Generate an RSA key pair with a modulus of roughly *bits* bits."""
    if bits < 64:
        raise ValueError("key size below 64 bits cannot hold a SHA-256-derived digest securely")
    rng = rng or random.Random(DEFAULT_SEED)
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % public_exponent == 0:
            continue
        try:
            d = _modinv(public_exponent, phi)
        except ValueError:
            continue
        return RSAKeyPair(
            n=n,
            e=public_exponent,
            d=d,
            bits=bits,
            p=p,
            q=q,
            dp=d % (p - 1),
            dq=d % (q - 1),
            qinv=_modinv(q, p),
        )


def _digest(message: bytes, n: int) -> int:
    return int.from_bytes(hashlib.sha256(message).digest(), "big") % n


def sign(message: bytes, key: RSAKeyPair) -> bytes:
    """Sign *message* with the private exponent of *key*."""
    digest = _digest(message, key.n)
    if key.qinv is not None:
        # CRT shortcut: identical output, two half-size exponentiations.
        m1 = pow(digest % key.p, key.dp, key.p)
        m2 = pow(digest % key.q, key.dq, key.q)
        signature = m2 + ((m1 - m2) * key.qinv % key.p) * key.q
    else:
        signature = pow(digest, key.d, key.n)
    return signature.to_bytes(key.signature_bytes, "big")


def verify(message: bytes, signature: bytes, public_key: Tuple[int, int]) -> bool:
    """Verify a signature produced by :func:`sign` against ``(n, e)``."""
    n, e = public_key
    value = int.from_bytes(signature, "big")
    if value >= n:
        return False
    recovered = pow(value, e, n)
    return recovered == _digest(message, n)
