"""Prime generation for RSA key pairs.

Implements deterministic trial division for small candidates and the
Miller–Rabin probabilistic primality test for large ones, plus a prime
generator driven by a caller-supplied :class:`random.Random` so key
generation is reproducible in tests and benchmarks.
"""

from __future__ import annotations

import random
from typing import Optional

#: Seed for the fallback RNG when the caller supplies none.  A fixed seed
#: keeps bare calls reproducible (the determinism contract in ROADMAP.md);
#: callers needing independent streams pass their own seeded Random.
DEFAULT_SEED = 0x5EED

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)


def is_probable_prime(candidate: int, rounds: int = 24, rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin primality test.

    With 24 rounds the probability of declaring a composite prime is below
    2**-48, far stronger than needed for simulation-grade keys.
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False

    # Write candidate - 1 as d * 2**r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    rng = rng or random.Random(DEFAULT_SEED)
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x == 1 or x == candidate - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Generate a random probable prime with exactly *bits* bits."""
    if bits < 2:
        raise ValueError("a prime needs at least 2 bits")
    rng = rng or random.Random(DEFAULT_SEED)
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng=rng):
            return candidate
