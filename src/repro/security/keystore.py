"""Key management: per-principal key pairs and public-key distribution.

A :class:`KeyStore` owns the private keys of the principals hosted on one
simulation (or one node) and a directory of public keys for every principal
it has heard about.  In a real deployment key distribution would involve a
PKI; in the simulation every node's keystore is pre-populated with the public
keys of all principals, which matches the paper's assumption that ``says``
abstracts away the details of authentication.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Tuple

from repro.security.rsa import DEFAULT_KEY_BITS, RSAKeyPair, generate_keypair


class KeyStore:
    """Private keys for owned principals plus a public-key directory."""

    def __init__(self, key_bits: int = DEFAULT_KEY_BITS, seed: Optional[int] = None) -> None:
        self._key_bits = key_bits
        self._rng = random.Random(seed)
        self._private: Dict[str, RSAKeyPair] = {}
        self._public: Dict[str, Tuple[int, int]] = {}

    # -- key creation ---------------------------------------------------------

    @property
    def key_bits(self) -> int:
        return self._key_bits

    def create_keypair(self, principal: str) -> RSAKeyPair:
        """Generate (or return the existing) key pair for *principal*."""
        existing = self._private.get(principal)
        if existing is not None:
            return existing
        keypair = generate_keypair(self._key_bits, self._rng)
        self._private[principal] = keypair
        self._public[principal] = keypair.public_key
        return keypair

    def create_all(self, principals: Iterable[str]) -> None:
        for principal in principals:
            self.create_keypair(principal)

    # -- lookups --------------------------------------------------------------

    def private_key(self, principal: str) -> RSAKeyPair:
        try:
            return self._private[principal]
        except KeyError:
            raise KeyError(f"no private key for principal {principal!r}") from None

    def has_private_key(self, principal: str) -> bool:
        return principal in self._private

    def public_key(self, principal: str) -> Tuple[int, int]:
        try:
            return self._public[principal]
        except KeyError:
            raise KeyError(f"no public key known for principal {principal!r}") from None

    def has_public_key(self, principal: str) -> bool:
        return principal in self._public

    def register_public_key(self, principal: str, public_key: Tuple[int, int]) -> None:
        """Install another principal's public key (simulated key distribution)."""
        self._public[principal] = public_key

    def import_directory(self, other: "KeyStore") -> None:
        """Copy every public key known to *other* into this store."""
        for principal, public_key in other._public.items():
            self._public.setdefault(principal, public_key)

    def principals(self) -> Tuple[str, ...]:
        return tuple(self._public)

    def signature_bytes(self) -> int:
        """Wire size of one signature under the configured key size."""
        return (self._key_bits + 7) // 8
