"""Authentication modes of the ``says`` operator.

The paper (Section 2.2) notes that the implementation of ``says`` depends on
the deployment: "In a hostile world, says may require digital signatures,
while in a more benign world, says may simply append a cleartext principal
header to a message — and this will of course be cheaper."

:class:`SaysMode` captures exactly these options; the experiment harness maps
the three evaluated configurations to them:

* ``NDlog``        -> :attr:`SaysMode.NONE`
* ``SeNDlog``      -> :attr:`SaysMode.SIGNED`
* ``SeNDlogProv``  -> :attr:`SaysMode.SIGNED` plus provenance
"""

from __future__ import annotations

from enum import Enum


class SaysMode(Enum):
    """How exported tuples are attributed to their asserting principal."""

    #: No authentication at all: plain NDlog, tuples carry no principal.
    NONE = "none"

    #: A cleartext principal header is attached but not signed (benign world).
    CLEARTEXT = "cleartext"

    #: Each tuple is digitally signed by the exporting principal (hostile world).
    SIGNED = "signed"

    @property
    def authenticates(self) -> bool:
        """True when tuples carry a principal attribution at all."""
        return self is not SaysMode.NONE

    @property
    def requires_signature(self) -> bool:
        return self is SaysMode.SIGNED

    def header_bytes(self, principal: str, signature_bytes: int) -> int:
        """Wire overhead added to one tuple under this mode.

        ``NONE`` adds nothing; ``CLEARTEXT`` adds the principal name;
        ``SIGNED`` adds the principal name plus a fixed-size signature.
        """
        if self is SaysMode.NONE:
            return 0
        overhead = len(principal.encode("utf-8"))
        if self is SaysMode.SIGNED:
            overhead += signature_bytes
        return overhead
