"""Security substrate for SeNDlog: principals, keys, signatures, ``says``.

The paper's evaluation signs every exchanged tuple with RSA (via OpenSSL).
This package provides the equivalent building blocks from scratch:

* :mod:`repro.security.primes` — Miller–Rabin primality testing and prime
  generation;
* :mod:`repro.security.rsa` — textbook RSA key generation, signing and
  verification over SHA-256 digests;
* :mod:`repro.security.keystore` — per-principal key management and public
  key distribution;
* :mod:`repro.security.principal` — security principals with the multi-level
  "says" trust levels of Section 2.2 / 4.5;
* :mod:`repro.security.says` — the authentication modes of the ``says``
  operator (none, cleartext, signed);
* :mod:`repro.security.authenticator` — the tuple signing / verification
  pipeline used by node engines when exporting and importing tuples.
"""

from repro.security.primes import is_probable_prime, generate_prime
from repro.security.rsa import RSAKeyPair, generate_keypair, sign, verify
from repro.security.keystore import KeyStore
from repro.security.principal import Principal, PrincipalRegistry
from repro.security.says import SaysMode
from repro.security.authenticator import (
    AuthenticationError,
    Authenticator,
    SignedPayload,
)

__all__ = [
    "AuthenticationError",
    "Authenticator",
    "KeyStore",
    "Principal",
    "PrincipalRegistry",
    "RSAKeyPair",
    "SaysMode",
    "SignedPayload",
    "generate_keypair",
    "generate_prime",
    "is_probable_prime",
    "sign",
    "verify",
]
