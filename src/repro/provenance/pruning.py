"""Provenance maintenance optimizations (Section 5).

Three optimizations the paper outlines for lowering provenance overhead:

* **proactive vs reactive maintenance** — :class:`MaintenanceMode` plus
  :class:`ReactiveProvenanceBuffer`: in reactive (lazy) mode derivations are
  buffered cheaply and only materialised into the provenance stores when a
  network event (e.g. detected route divergence) triggers it;
* **sampling** — :class:`ProvenanceSampler` records provenance for only a
  deterministic pseudo-random fraction of tuples, the IP-traceback /
  ForNet-style accuracy-for-overhead trade;
* **provenance granularity** — :class:`ASAggregator` maps node-level
  principals onto their autonomous system so provenance is maintained at AS
  granularity, sufficient for detecting aggregated events while much smaller.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Mapping, Tuple

from repro.engine.tuples import Derivation, FactKey
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.polynomial import ProvenanceExpression


class MaintenanceMode(Enum):
    """When provenance for new tuples is computed and propagated."""

    #: Eagerly maintain and propagate provenance for every new tuple.
    PROACTIVE = "proactive"
    #: Buffer derivations cheaply; materialise only when an event triggers it.
    REACTIVE = "reactive"


@dataclass
class ReactiveProvenanceBuffer:
    """Lazy provenance: buffered derivations materialised on demand.

    ``sink`` is called with each buffered derivation when :meth:`trigger`
    fires (e.g. the diagnostics use case detecting divergence); until then
    the only cost is the buffer itself.
    """

    sink: Callable[[Derivation], None]
    buffered: List[Derivation] = field(default_factory=list)
    materialized: bool = False

    def observe(self, derivation: Derivation) -> None:
        """Record a derivation cheaply (no provenance computation yet)."""
        if self.materialized:
            self.sink(derivation)
        else:
            self.buffered.append(derivation)

    def trigger(self) -> int:
        """Materialise all buffered provenance; return how many entries flushed."""
        flushed = len(self.buffered)
        for derivation in self.buffered:
            self.sink(derivation)
        self.buffered.clear()
        self.materialized = True
        return flushed

    def reset(self) -> None:
        """Return to lazy buffering (e.g. after the anomaly is resolved)."""
        self.materialized = False


class ProvenanceSampler:
    """Deterministic sampling of which tuples get provenance recorded.

    The decision is a hash of the tuple key, so all nodes agree on whether a
    given tuple is sampled without coordination — the property IP traceback's
    probabilistic marking relies on, made deterministic for reproducibility.
    """

    def __init__(self, rate: float, salt: str = "") -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sampling rate must be within [0, 1]")
        self.rate = rate
        self.salt = salt
        self.sampled = 0
        self.skipped = 0

    def should_record(self, key: FactKey) -> bool:
        if self.rate >= 1.0:
            self.sampled += 1
            return True
        if self.rate <= 0.0:
            self.skipped += 1
            return False
        digest = hashlib.sha256(f"{self.salt}|{key}".encode("utf-8")).digest()
        bucket = int.from_bytes(digest[:8], "big") / float(1 << 64)
        if bucket < self.rate:
            self.sampled += 1
            return True
        self.skipped += 1
        return False

    def observed_rate(self) -> float:
        total = self.sampled + self.skipped
        return self.sampled / total if total else 0.0


class ASAggregator:
    """Aggregate provenance to autonomous-system granularity.

    ``assignment`` maps node / principal names to AS identifiers.  Rewriting
    a provenance expression replaces every node variable with its AS variable
    and re-condenses, typically shrinking the expression dramatically while
    still identifying which ASes contributed to a derivation.
    """

    def __init__(self, assignment: Mapping[str, str], default_as: str = "AS-unknown") -> None:
        self._assignment = dict(assignment)
        self._default = default_as

    def as_of(self, node: str) -> str:
        return self._assignment.get(node, self._default)

    def aggregate_expression(self, expression: ProvenanceExpression) -> ProvenanceExpression:
        """Rewrite node variables into AS variables and condense."""
        monomials: Dict = {}
        for support in expression.monomial_supports():
            renamed = tuple(sorted({self.as_of(name) for name in support}))
            key = tuple((name, 1) for name in renamed)
            monomials[key] = 1
        return ProvenanceExpression.from_monomials(monomials).condense()

    def aggregate(self, annotation: CondensedProvenance) -> CondensedProvenance:
        return CondensedProvenance(expression=self.aggregate_expression(annotation.expression))

    def compression_ratio(self, annotation: CondensedProvenance) -> float:
        """Size of the AS-level annotation relative to the node-level one."""
        original = max(annotation.serialized_size(), 1)
        return self.aggregate(annotation).serialized_size() / original


def grouped_by_as(
    aggregator: ASAggregator, principals: Iterable[str]
) -> Dict[str, Tuple[str, ...]]:
    """Group principals by their AS (helper for AS-level anomaly summaries)."""
    groups: Dict[str, List[str]] = {}
    for principal in principals:
        groups.setdefault(aggregator.as_of(principal), []).append(principal)
    return {as_id: tuple(sorted(members)) for as_id, members in groups.items()}
