"""Condensed provenance (Section 4.4).

Condensed provenance keeps, for each tuple, only the information needed to
enforce trust based on *source origins*: a boolean expression over the
principals (or base-tuple keys) its derivations rest on, minimised by
absorption so that e.g. ``<a + a*b>`` collapses to ``<a>`` — whether ``b`` is
trusted is inconsequential once ``a`` is.

A :class:`CondensedProvenance` wraps a provenance polynomial together with
its BDD encoding (canonical form).  Combining annotations mirrors the
relational operators: ``join`` (*) when facts are used together in one rule
body, ``merge`` (+) when alternative derivations of the same tuple meet.
The annotation travels with the tuple under local provenance, so its
:meth:`serialized_size` feeds the bandwidth model of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.provenance.bdd import BDD, BDDManager
from repro.provenance.polynomial import ProvenanceExpression, p_var
from repro.provenance.semiring import Semiring


def condense_expression(expression: ProvenanceExpression) -> ProvenanceExpression:
    """Condense *expression* by idempotence and absorption (``a + a*b -> a``)."""
    return expression.condense()


@dataclass(frozen=True)
class CondensedProvenance:
    """A tuple's condensed provenance annotation.

    The canonical (condensed) polynomial is always stored; the BDD handle is
    optional and lazily created by :meth:`to_bdd` when a shared manager is
    supplied, matching the paper's BuDDy-backed encoding.
    """

    expression: ProvenanceExpression

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def from_source(source: str) -> "CondensedProvenance":
        """Annotation of a base tuple asserted by *source* (a principal or key)."""
        return CondensedProvenance(expression=p_var(source))

    @staticmethod
    def empty() -> "CondensedProvenance":
        """Annotation of a tuple with no derivation (zero)."""
        return CondensedProvenance(expression=ProvenanceExpression.zero())

    @staticmethod
    def axiomatic() -> "CondensedProvenance":
        """Annotation of a tuple taken as given (one)."""
        return CondensedProvenance(expression=ProvenanceExpression.one())

    # -- combination ----------------------------------------------------------

    def join(self, other: "CondensedProvenance") -> "CondensedProvenance":
        """Combine annotations of facts joined within a single derivation (*)."""
        return CondensedProvenance(
            expression=(self.expression * other.expression).condense()
        )

    def merge(self, other: "CondensedProvenance") -> "CondensedProvenance":
        """Combine alternative derivations of the same tuple (+)."""
        return CondensedProvenance(
            expression=(self.expression + other.expression).condense()
        )

    @staticmethod
    def join_all(annotations: Iterable["CondensedProvenance"]) -> "CondensedProvenance":
        result = CondensedProvenance.axiomatic()
        for annotation in annotations:
            result = result.join(annotation)
        return result

    @staticmethod
    def merge_all(annotations: Iterable["CondensedProvenance"]) -> "CondensedProvenance":
        result = CondensedProvenance.empty()
        for annotation in annotations:
            result = result.merge(annotation)
        return result

    # -- queries --------------------------------------------------------------

    def sources(self) -> frozenset:
        """Every principal / base key the annotation mentions."""
        return self.expression.variables()

    def acceptable(self, trusted: Iterable[str]) -> bool:
        """Trust decision: is some derivation supported entirely by *trusted*?

        This is the Section 4.4 use of condensed provenance — a node accepts
        a tuple iff at least one monomial's sources are all trusted.
        """
        trusted_set = set(trusted)
        return any(
            support <= trusted_set for support in self.expression.monomial_supports()
        )

    def evaluate(self, semiring: Semiring, assignment: Mapping[str, object]) -> object:
        """Evaluate the annotation in an arbitrary semiring (Section 4.5)."""
        return self.expression.evaluate(semiring, assignment)

    def to_bdd(self, manager: BDDManager) -> BDD:
        """Encode the annotation in *manager* (the BuDDy analogue)."""
        return manager.from_expression(self.expression)

    def serialized_size(self) -> int:
        """Wire size in bytes when piggy-backed on a shipped tuple."""
        return self.expression.serialized_size()

    def __str__(self) -> str:
        return str(self.expression)
