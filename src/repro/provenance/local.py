"""Local provenance (Section 4.1).

Under local provenance the complete derivation of every tuple is available at
the tuple's storage node: whenever a tuple is shipped to another node its
entire provenance is piggy-backed on the message.  Querying is therefore
cheap (a local lookup) and trust policies can be enforced immediately, at the
cost of extra communication for every shipped tuple.

The :class:`LocalProvenanceStore` is the per-node component: it records
every local rule firing into a derivation graph, produces the piggy-back
payload for outgoing tuples, and merges piggy-backed payloads arriving with
remote tuples so the local graph stays complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engine.tuples import Derivation, Fact, FactKey
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.graph import DerivationGraph


@dataclass(frozen=True)
class PiggybackedProvenance:
    """The provenance payload shipped along with one tuple.

    ``graph`` is the full derivation subgraph rooted at the tuple;
    ``condensed`` the equivalent condensed annotation.  The wire-size model
    charges for whichever representation the configuration ships.
    """

    root: FactKey
    graph: DerivationGraph
    condensed: CondensedProvenance

    def serialized_size(self, condensed_only: bool = True) -> int:
        """Bytes the piggy-back adds to a message.

        With ``condensed_only`` (the SeNDlogProv configuration of the
        evaluation) only the condensed expression travels; otherwise the size
        of the rendered full tree is charged.
        """
        if condensed_only:
            return self.condensed.serialized_size()
        return len(self.graph.render(self.root).encode("utf-8"))


class LocalProvenanceStore:
    """Per-node recorder of complete (local) provenance."""

    def __init__(self, node: str) -> None:
        self.node = node
        self.graph = DerivationGraph()
        self._condensed: Dict[FactKey, CondensedProvenance] = {}

    # -- recording -------------------------------------------------------------

    def record_base(self, fact: Fact, source: Optional[str] = None) -> None:
        """Record a base (input) fact asserted at this node."""
        self.graph.add_fact(fact, location=self.node)
        annotation = CondensedProvenance.from_source(
            source or fact.asserted_by or self.node
        )
        self._merge_condensed(fact.key(), annotation)

    def record_derivation(self, derivation: Derivation) -> CondensedProvenance:
        """Record a local rule firing and return the derived tuple's annotation."""
        self.graph.add_derivation(
            output=derivation.fact,
            rule_label=derivation.rule_label,
            antecedents=derivation.antecedents,
            location=self.node,
            timestamp=derivation.timestamp,
        )
        joined = CondensedProvenance.join_all(
            self.annotation(fact.key()) for fact in derivation.antecedents
        )
        return self._merge_condensed(derivation.fact.key(), joined)

    def record_remote(self, fact: Fact, piggyback: Optional[PiggybackedProvenance]) -> None:
        """Merge the provenance piggy-backed on a tuple received from another node."""
        self.graph.add_fact(fact)
        if piggyback is None:
            annotation = CondensedProvenance.from_source(
                fact.asserted_by or fact.origin or "unknown"
            )
            self._merge_condensed(fact.key(), annotation)
            return
        self.graph.merge(piggyback.graph)
        self._merge_condensed(fact.key(), piggyback.condensed)

    def record_remote_condensed(self, fact: Fact, condensed: CondensedProvenance) -> None:
        """Record a remote tuple that carried only a condensed annotation.

        This is the cheap path used by the SeNDlogProv configuration: the
        derivation structure stays at the sender, only the condensed
        expression is merged locally.
        """
        self.graph.add_fact(fact)
        self._merge_condensed(fact.key(), condensed)

    def invalidate(self, key: FactKey) -> bool:
        """Stop vouching for *key* (its tuple was retracted).

        Drops the condensed annotation and the derivation-graph entry, so
        ``annotation`` falls back to the identity-of-the-key default and the
        graph no longer produces the tuple.  Returns True when the store had
        provenance for the key.
        """
        known = self._condensed.pop(key, None) is not None
        return self.graph.invalidate(key) or known

    # -- queries ----------------------------------------------------------------

    def knows(self, key: FactKey) -> bool:
        """True when the store actually recorded provenance for *key*.

        ``annotation`` falls back to an identity variable for unknown keys;
        callers that must distinguish a real annotation from that fallback
        (e.g. the in-network query plane deciding whether to ship one) check
        here first.
        """
        return key in self._condensed or self.graph.tuple_node(key) is not None

    def annotation(self, key: FactKey) -> CondensedProvenance:
        """Condensed annotation of *key*; unknown keys map to their own identity."""
        existing = self._condensed.get(key)
        if existing is not None:
            return existing
        node = self.graph.tuple_node(key)
        if node is not None and node.asserted_by:
            return CondensedProvenance.from_source(node.asserted_by)
        relation, values = key
        rendered = ",".join(str(v) for v in values)
        return CondensedProvenance.from_source(f"{relation}({rendered})")

    def derivation_tree(self, key: FactKey) -> DerivationGraph:
        """The full local derivation graph rooted at *key* (Figure 1)."""
        return self.graph.subgraph(key)

    def base_tuples(self, key: FactKey) -> frozenset:
        return self.graph.base_tuples(key)

    def piggyback_for(self, fact: Fact) -> PiggybackedProvenance:
        """Build the provenance payload to ship along with *fact*."""
        key = fact.key()
        return PiggybackedProvenance(
            root=key,
            graph=self.graph.subgraph(key),
            condensed=self.annotation(key),
        )

    def render(self, key: FactKey) -> str:
        return self.graph.render(key)

    def keys(self) -> Tuple[FactKey, ...]:
        return tuple(node.key for node in self.graph.tuple_nodes())

    # -- internals ---------------------------------------------------------------

    def _merge_condensed(
        self, key: FactKey, annotation: CondensedProvenance
    ) -> CondensedProvenance:
        existing = self._condensed.get(key)
        merged = annotation if existing is None else existing.merge(annotation)
        self._condensed[key] = merged
        return merged
