"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

The paper condenses provenance expressions by encoding them "in boolean
expressions stored in Binary Decision Diagrams" (Section 4.4), using the
BuDDy library.  This module is a from-scratch replacement providing exactly
the operations condensation needs:

* a shared :class:`BDDManager` with a unique table (structural hashing) so
  equivalent boolean functions are represented by the same node — equality of
  BDD references is semantic equivalence;
* ``apply`` with memoisation for AND / OR / NOT;
* restriction (cofactors), satisfiability, model counting and enumeration of
  satisfying assignments;
* conversion from :class:`~repro.provenance.polynomial.ProvenanceExpression`
  and extraction of the minimal monotone DNF (prime implicants), which is the
  condensed provenance shipped on the wire.

Variables are ordered by their registration order in the manager; provenance
callers register base-tuple / principal identifiers as variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.provenance.polynomial import ProvenanceExpression


@dataclass(frozen=True)
class BDD:
    """A handle to one node in a :class:`BDDManager`.

    Handles are only meaningful together with the manager that created them;
    two handles from the same manager denote the same boolean function iff
    they are equal.
    """

    manager: "BDDManager"
    node: int

    # -- boolean structure ----------------------------------------------------

    @property
    def is_true(self) -> bool:
        return self.node == BDDManager.TRUE

    @property
    def is_false(self) -> bool:
        return self.node == BDDManager.FALSE

    def __and__(self, other: "BDD") -> "BDD":
        return self.manager.apply_and(self, other)

    def __or__(self, other: "BDD") -> "BDD":
        return self.manager.apply_or(self, other)

    def __invert__(self) -> "BDD":
        return self.manager.apply_not(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BDD):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    # -- queries --------------------------------------------------------------

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return self.manager.evaluate(self, assignment)

    def satisfying_assignments(self) -> Iterator[Dict[str, bool]]:
        return self.manager.satisfying_assignments(self)

    def count_solutions(self) -> int:
        return self.manager.count_solutions(self)

    def support(self) -> FrozenSet[str]:
        return self.manager.support(self)

    def node_count(self) -> int:
        return self.manager.node_count(self)

    def prime_implicants(self) -> Tuple[FrozenSet[str], ...]:
        return self.manager.prime_implicants(self)


class BDDManager:
    """Shared node storage for a family of ROBDDs."""

    FALSE = 0
    TRUE = 1

    def __init__(self) -> None:
        # node id -> (level, low, high); terminals use level = +inf sentinel.
        self._nodes: List[Tuple[int, int, int]] = [
            (1 << 30, 0, 0),  # FALSE
            (1 << 30, 1, 1),  # TRUE
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._variables: List[str] = []
        self._variable_levels: Dict[str, int] = {}

    # -- variables ------------------------------------------------------------

    def declare(self, name: str) -> "BDD":
        """Declare (or fetch) the variable *name* and return its BDD."""
        if name not in self._variable_levels:
            self._variable_levels[name] = len(self._variables)
            self._variables.append(name)
        level = self._variable_levels[name]
        node = self._make_node(level, BDDManager.FALSE, BDDManager.TRUE)
        return BDD(self, node)

    def variables(self) -> Tuple[str, ...]:
        return tuple(self._variables)

    @property
    def true(self) -> "BDD":
        return BDD(self, BDDManager.TRUE)

    @property
    def false(self) -> "BDD":
        return BDD(self, BDDManager.FALSE)

    # -- node construction ----------------------------------------------------

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    def _level(self, node: int) -> int:
        return self._nodes[node][0]

    def _low(self, node: int) -> int:
        return self._nodes[node][1]

    def _high(self, node: int) -> int:
        return self._nodes[node][2]

    # -- apply ----------------------------------------------------------------

    def apply_and(self, left: "BDD", right: "BDD") -> "BDD":
        return BDD(self, self._apply("and", left.node, right.node))

    def apply_or(self, left: "BDD", right: "BDD") -> "BDD":
        return BDD(self, self._apply("or", left.node, right.node))

    def apply_not(self, operand: "BDD") -> "BDD":
        return BDD(self, self._negate(operand.node))

    def _apply(self, op: str, left: int, right: int) -> int:
        terminal = self._apply_terminal(op, left, right)
        if terminal is not None:
            return terminal
        key = (op, left, right) if left <= right else (op, right, left)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        left_level = self._level(left)
        right_level = self._level(right)
        level = min(left_level, right_level)
        left_low, left_high = (
            (self._low(left), self._high(left)) if left_level == level else (left, left)
        )
        right_low, right_high = (
            (self._low(right), self._high(right))
            if right_level == level
            else (right, right)
        )
        low = self._apply(op, left_low, right_low)
        high = self._apply(op, left_high, right_high)
        result = self._make_node(level, low, high)
        self._apply_cache[key] = result
        return result

    @staticmethod
    def _apply_terminal(op: str, left: int, right: int) -> Optional[int]:
        if op == "and":
            if left == BDDManager.FALSE or right == BDDManager.FALSE:
                return BDDManager.FALSE
            if left == BDDManager.TRUE:
                return right
            if right == BDDManager.TRUE:
                return left
            if left == right:
                return left
        elif op == "or":
            if left == BDDManager.TRUE or right == BDDManager.TRUE:
                return BDDManager.TRUE
            if left == BDDManager.FALSE:
                return right
            if right == BDDManager.FALSE:
                return left
            if left == right:
                return left
        return None

    def _negate(self, node: int) -> int:
        if node == BDDManager.TRUE:
            return BDDManager.FALSE
        if node == BDDManager.FALSE:
            return BDDManager.TRUE
        key = ("not", node, node)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        level, low, high = self._nodes[node]
        result = self._make_node(level, self._negate(low), self._negate(high))
        self._apply_cache[key] = result
        return result

    # -- queries --------------------------------------------------------------

    def evaluate(self, bdd: "BDD", assignment: Dict[str, bool]) -> bool:
        node = bdd.node
        while node not in (BDDManager.TRUE, BDDManager.FALSE):
            level, low, high = self._nodes[node]
            name = self._variables[level]
            node = high if assignment.get(name, False) else low
        return node == BDDManager.TRUE

    def support(self, bdd: "BDD") -> FrozenSet[str]:
        seen: set = set()
        names: set = set()
        stack = [bdd.node]
        while stack:
            node = stack.pop()
            if node in seen or node in (BDDManager.TRUE, BDDManager.FALSE):
                continue
            seen.add(node)
            level, low, high = self._nodes[node]
            names.add(self._variables[level])
            stack.extend((low, high))
        return frozenset(names)

    def node_count(self, bdd: "BDD") -> int:
        """Number of internal nodes reachable from *bdd* (its memory size)."""
        seen: set = set()
        stack = [bdd.node]
        while stack:
            node = stack.pop()
            if node in seen or node in (BDDManager.TRUE, BDDManager.FALSE):
                continue
            seen.add(node)
            stack.extend((self._low(node), self._high(node)))
        return len(seen)

    def count_solutions(self, bdd: "BDD") -> int:
        """Number of satisfying assignments over the declared variables."""
        total_vars = len(self._variables)
        cache: Dict[int, int] = {}

        def count(node: int) -> int:
            if node == BDDManager.FALSE:
                return 0
            if node == BDDManager.TRUE:
                return 1 << total_vars
            if node in cache:
                return cache[node]
            level, low, high = self._nodes[node]
            result = (count(low) + count(high)) // 2
            cache[node] = result
            return result

        return count(bdd.node)

    def satisfying_assignments(self, bdd: "BDD") -> Iterator[Dict[str, bool]]:
        """Yield partial assignments (over the BDD's support) that satisfy it."""

        def walk(node: int, partial: Dict[str, bool]) -> Iterator[Dict[str, bool]]:
            if node == BDDManager.FALSE:
                return
            if node == BDDManager.TRUE:
                yield dict(partial)
                return
            level, low, high = self._nodes[node]
            name = self._variables[level]
            partial[name] = False
            yield from walk(low, partial)
            partial[name] = True
            yield from walk(high, partial)
            del partial[name]

        yield from walk(bdd.node, {})

    # -- provenance-specific operations ---------------------------------------

    def from_expression(self, expression: ProvenanceExpression) -> "BDD":
        """Encode a provenance polynomial as the BDD of its boolean projection."""
        result = self.false
        for support in expression.monomial_supports():
            term = self.true
            for name in sorted(support):
                term = term & self.declare(name)
            result = result | term
        return result

    def prime_implicants(self, bdd: "BDD") -> Tuple[FrozenSet[str], ...]:
        """Prime implicants of a *monotone* function as variable sets.

        Provenance functions are monotone (no negated base tuples), so the
        prime implicants are exactly the minimal monomials of the condensed
        provenance expression.  Computed by enumerating the supports of
        satisfying assignments restricted to positive literals and keeping
        the minimal ones; cubes never exceed the BDD's support size.
        """
        supports = set()
        for assignment in self.satisfying_assignments(bdd):
            positives = frozenset(name for name, value in assignment.items() if value)
            supports.add(positives)
        # For monotone functions any superset of a satisfying positive set is
        # satisfying; keep only the minimal sets.
        minimal = [
            candidate
            for candidate in supports
            if not any(other < candidate for other in supports)
        ]
        return tuple(sorted(minimal, key=lambda s: (len(s), sorted(s))))

    def to_expression(self, bdd: "BDD") -> ProvenanceExpression:
        """Convert back to the condensed provenance polynomial (minimal DNF)."""
        if bdd.is_false:
            return ProvenanceExpression.zero()
        if bdd.is_true:
            return ProvenanceExpression.one()
        result = ProvenanceExpression.zero()
        for implicant in self.prime_implicants(bdd):
            term = ProvenanceExpression.one()
            for name in sorted(implicant):
                term = term * ProvenanceExpression.var(name)
            result = result + term
        return result.condense()

    def size(self) -> int:
        """Total number of nodes allocated by this manager."""
        return len(self._nodes)
