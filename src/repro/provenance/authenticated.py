"""Authenticated provenance (Section 4.3).

In an untrusted environment the provenance itself must be authenticated:
every node of the derivation tree is asserted by a principal using ``says``,
and carries that principal's digital signature so a querier can validate that
the provenance was not spoofed.  This module wraps a derivation graph with
per-node signatures and implements chain verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.engine.tuples import FactKey
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.graph import DerivationGraph, DerivationNode, OperatorNode
from repro.security.keystore import KeyStore
from repro.security.rsa import sign, verify


class ProvenanceVerificationError(Exception):
    """Raised when an authenticated provenance graph fails verification."""


@dataclass(frozen=True)
class SignedAnnotation:
    """A condensed provenance annotation signed by its asserting principal.

    This is the wire form of authenticated provenance for piggy-backed
    annotations: the exporting principal signs the serialized condensed
    expression, so the importer can check that the provenance was not
    spoofed or stripped in transit (Section 4.3).
    """

    annotation: "CondensedProvenance"
    principal: str
    signature: bytes

    def payload(self) -> bytes:
        return f"{self.principal}|{self.annotation.expression.to_string()}".encode("utf-8")

    def wire_size(self) -> int:
        """Bytes the signed annotation adds to a shipped tuple."""
        return (
            self.annotation.serialized_size()
            + len(self.signature)
            + len(self.principal.encode("utf-8"))
        )


def sign_annotation(
    annotation: "CondensedProvenance", principal: str, keystore: KeyStore
) -> SignedAnnotation:
    """Sign *annotation* under *principal*'s private key."""
    unsigned = SignedAnnotation(annotation=annotation, principal=principal, signature=b"")
    signature = sign(unsigned.payload(), keystore.private_key(principal))
    return SignedAnnotation(annotation=annotation, principal=principal, signature=signature)


def verify_annotation(signed: SignedAnnotation, keystore: KeyStore) -> bool:
    """Verify a signed annotation; raises on unknown principals."""
    if not keystore.has_public_key(signed.principal):
        raise ProvenanceVerificationError(
            f"no public key for provenance principal {signed.principal!r}"
        )
    return verify(signed.payload(), signed.signature, keystore.public_key(signed.principal))


def _assertion_payload(node: DerivationNode) -> bytes:
    """Canonical bytes a principal signs when asserting a provenance node."""
    rendered = ",".join(str(v) for v in node.values)
    return (
        f"{node.asserted_by or ''}|{node.relation}({rendered})|{node.location or ''}"
    ).encode("utf-8")


def _operator_payload(operator: OperatorNode) -> bytes:
    inputs = ";".join(f"{k[0]}{k[1]}" for k in operator.inputs)
    return (
        f"{operator.rule_label}|{operator.location or ''}|"
        f"{operator.output[0]}{operator.output[1]}|{inputs}"
    ).encode("utf-8")


@dataclass
class AuthenticatedProvenance:
    """A derivation graph whose nodes carry principal signatures.

    ``signatures`` maps a tuple key to the signature produced by the
    asserting principal; ``operator_signatures`` maps the index of each
    operator node to the signature of the principal in whose context the rule
    executed.
    """

    graph: DerivationGraph
    signatures: Dict[FactKey, bytes] = field(default_factory=dict)
    operator_signatures: Dict[int, bytes] = field(default_factory=dict)

    # -- signing ---------------------------------------------------------------

    @classmethod
    def sign_graph(cls, graph: DerivationGraph, keystore: KeyStore) -> "AuthenticatedProvenance":
        """Sign every node of *graph* with its asserting principal's key.

        Tuple nodes without an asserting principal are signed by their
        location's principal (the node that holds them); operator nodes by
        the principal at whose context the rule fired.
        """
        result = cls(graph=graph)
        for node in graph.tuple_nodes():
            principal = node.asserted_by or node.location
            if principal is None or not keystore.has_private_key(principal):
                continue
            result.signatures[node.key] = sign(
                _assertion_payload(node), keystore.private_key(principal)
            )
        for index, operator in enumerate(graph.operators()):
            principal = operator.location
            if principal is None or not keystore.has_private_key(principal):
                continue
            result.operator_signatures[index] = sign(
                _operator_payload(operator), keystore.private_key(principal)
            )
        return result

    # -- verification ------------------------------------------------------------

    def verify(self, keystore: KeyStore, require_complete: bool = True) -> bool:
        """Verify every signature in the graph.

        Raises :class:`ProvenanceVerificationError` on any invalid signature;
        with ``require_complete`` it also fails when a node that names a
        principal has no signature at all (a stripped provenance chain).
        """
        for node in self.graph.tuple_nodes():
            principal = node.asserted_by or node.location
            signature = self.signatures.get(node.key)
            if signature is None:
                if require_complete and principal is not None:
                    raise ProvenanceVerificationError(
                        f"provenance node {node.label()} is unsigned"
                    )
                continue
            if principal is None or not keystore.has_public_key(principal):
                raise ProvenanceVerificationError(
                    f"no public key to verify provenance node {node.label()}"
                )
            if not verify(
                _assertion_payload(node), signature, keystore.public_key(principal)
            ):
                raise ProvenanceVerificationError(
                    f"signature check failed for provenance node {node.label()}"
                )

        for index, operator in enumerate(self.graph.operators()):
            signature = self.operator_signatures.get(index)
            if signature is None:
                if require_complete and operator.location is not None:
                    raise ProvenanceVerificationError(
                        f"operator node {operator.label()} is unsigned"
                    )
                continue
            principal = operator.location
            if principal is None or not keystore.has_public_key(principal):
                raise ProvenanceVerificationError(
                    f"no public key to verify operator node {operator.label()}"
                )
            if not verify(
                _operator_payload(operator), signature, keystore.public_key(principal)
            ):
                raise ProvenanceVerificationError(
                    f"signature check failed for operator node {operator.label()}"
                )
        return True

    def signature_overhead_bytes(self) -> int:
        """Total bytes of signatures attached to this provenance graph."""
        return sum(len(s) for s in self.signatures.values()) + sum(
            len(s) for s in self.operator_signatures.values()
        )

    def tamper_with_node(self, key: FactKey, forged_signature: bytes) -> None:
        """Replace a node's signature (used by tests to exercise detection)."""
        self.signatures[key] = forged_signature
