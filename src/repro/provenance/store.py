"""Online and offline provenance stores (Section 4.2).

*Online* provenance is maintained only for network state that is currently
valid: when a derived tuple's soft-state TTL lapses (or the tuple is deleted,
e.g. because a malicious node's routes are purged), its online provenance
entry goes with it.  *Offline* provenance is an append-only archive that
retains entries after the underlying state has expired, which is what
forensics and accountability need; because it can grow without bound it
supports aging (drop entries older than a horizon) unless they are explicitly
pinned as evidence of an anomaly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.tuples import Derivation, Fact, FactKey
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.graph import DerivationGraph


@dataclass(frozen=True)
class ProvenanceEntry:
    """One archived derivation record."""

    key: FactKey
    rule_label: str
    node: Optional[str]
    antecedent_keys: Tuple[FactKey, ...]
    timestamp: float
    expires_at: Optional[float]
    annotation: Optional[CondensedProvenance] = None


def entry_bytes(entry: ProvenanceEntry, include_annotation: bool = True) -> int:
    """Approximate bytes one archived entry occupies in memory.

    Key and antecedent keys at their rendered size, the rule label, 16 bytes
    for the two timestamps, plus the annotation's serialized size — the same
    currency :meth:`OfflineProvenanceArchive.storage_bytes` and the tiered
    archive's residency gauge report in.
    """
    total = len(str(entry.key)) + len(entry.rule_label) + 16
    total += sum(len(str(k)) for k in entry.antecedent_keys)
    if include_annotation and entry.annotation is not None:
        total += entry.annotation.serialized_size()
    return total


class OnlineProvenanceStore:
    """Provenance for currently-valid state only.

    Entries are indexed by the derived tuple's key and expire in lock-step
    with the tuple (same timestamp + TTL); :meth:`expire` must be called with
    the advancing clock, exactly like the soft-state tables.  Deleting a
    tuple (e.g. when reacting to a detected anomaly) drops its provenance and
    reports which other tuples depended on it, enabling cascade invalidation.
    """

    def __init__(self, node: str) -> None:
        self.node = node
        self._entries: Dict[FactKey, List[ProvenanceEntry]] = {}
        self._dependents: Dict[FactKey, Set[FactKey]] = {}

    def record(self, derivation: Derivation, annotation: Optional[CondensedProvenance] = None) -> None:
        fact = derivation.fact
        entry = ProvenanceEntry(
            key=fact.key(),
            rule_label=derivation.rule_label,
            node=derivation.node or self.node,
            antecedent_keys=tuple(a.key() for a in derivation.antecedents),
            timestamp=derivation.timestamp,
            expires_at=fact.expires_at(),
            annotation=annotation,
        )
        self._entries.setdefault(entry.key, []).append(entry)
        for antecedent in entry.antecedent_keys:
            self._dependents.setdefault(antecedent, set()).add(entry.key)

    def entries(self, key: FactKey) -> Tuple[ProvenanceEntry, ...]:
        return tuple(self._entries.get(key, ()))

    def __contains__(self, key: FactKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def dependents_of(self, key: FactKey) -> frozenset:
        """Tuples whose derivations used *key* (candidates for cascade deletion)."""
        return frozenset(self._dependents.get(key, set()))

    def delete(self, key: FactKey) -> frozenset:
        """Remove *key*'s provenance; return its dependents for cascading."""
        self._entries.pop(key, None)
        return self.dependents_of(key)

    def expire(self, now: float) -> List[ProvenanceEntry]:
        """Drop entries whose underlying tuple has expired at time *now*."""
        dropped: List[ProvenanceEntry] = []
        for key in list(self._entries):
            remaining = []
            for entry in self._entries[key]:
                if entry.expires_at is not None and now >= entry.expires_at:
                    dropped.append(entry)
                else:
                    remaining.append(entry)
            if remaining:
                self._entries[key] = remaining
            else:
                del self._entries[key]
        return dropped


class OfflineProvenanceArchive:
    """Append-only provenance archive that survives soft-state expiry.

    Supports the forensics and accountability use cases: entries remain
    queryable after the network state they describe has long expired, can be
    *pinned* (marked to persist, e.g. when an anomaly was detected), and can
    be aged out beyond a retention horizon to bound storage (Section 5).
    """

    def __init__(self, node: str, retention: Optional[float] = None) -> None:
        self.node = node
        self.retention = retention
        self._entries: List[ProvenanceEntry] = []
        self._pinned: Set[int] = set()
        #: Query pins: key -> refcount of in-flight offline queries rooted
        #: there.  ``age_out`` must not drop entries a pending query still
        #: references, whatever the retention horizon says.
        self._query_pins: Dict[FactKey, int] = {}
        #: Keys archived as base (application-asserted) inputs at this node.
        self._base: Set[FactKey] = set()
        #: Keys that arrived from another node -> the node holding their
        #: provenance.  Together with ``_base`` this gives the archive the
        #: same pointer-chasing shape as the live distributed store, so
        #: offline (forensic) traceback queries can walk it across nodes
        #: even after the live stores were wiped by a crash.
        self._remote_origin: Dict[FactKey, str] = {}
        #: Entry indexes per derived key (kept in sync by record / age_out)
        #: so per-key lookups — the unit of work of a traceback query — do
        #: not scan the whole log.
        self._by_key: Dict[FactKey, List[int]] = {}

    def record_base(self, fact: Fact) -> None:
        """Archive that *fact* was asserted as a base tuple at this node."""
        self._base.add(fact.key())

    def record_remote(self, fact: Fact, origin: Optional[str]) -> None:
        """Archive that *fact* arrived from *origin*, which holds its provenance."""
        if origin is not None and origin != self.node:
            self._remote_origin[fact.key()] = origin

    def is_base(self, key: FactKey) -> bool:
        return key in self._base

    def origin_of(self, key: FactKey) -> Optional[str]:
        """The node holding *key*'s provenance, when it arrived from elsewhere."""
        return self._remote_origin.get(key)

    def knows(self, key: FactKey) -> bool:
        """True when the archive recorded *key* as base or as a derivation."""
        return key in self._base or key in self._by_key

    def record(self, derivation: Derivation, annotation: Optional[CondensedProvenance] = None) -> int:
        fact = derivation.fact
        entry = ProvenanceEntry(
            key=fact.key(),
            rule_label=derivation.rule_label,
            node=derivation.node or self.node,
            antecedent_keys=tuple(a.key() for a in derivation.antecedents),
            timestamp=derivation.timestamp,
            expires_at=fact.expires_at(),
            annotation=annotation,
        )
        self._by_key.setdefault(entry.key, []).append(len(self._entries))
        self._entries.append(entry)
        return len(self._entries) - 1

    def pin(self, index: int) -> None:
        """Mark an entry to persist through aging (anomaly evidence)."""
        if 0 <= index < len(self._entries):
            self._pinned.add(index)

    def pin_key(self, key: FactKey) -> None:
        """Protect *key*'s entries from ``age_out`` while a query is in flight."""
        self._query_pins[key] = self._query_pins.get(key, 0) + 1

    def release_key(self, key: FactKey) -> None:
        count = self._query_pins.get(key, 0) - 1
        if count > 0:
            self._query_pins[key] = count
        else:
            self._query_pins.pop(key, None)

    def entries(self, key: Optional[FactKey] = None) -> Tuple[ProvenanceEntry, ...]:
        if key is None:
            return tuple(self._entries)
        return tuple(self._entries[i] for i in self._by_key.get(key, ()))

    def entries_between(self, start: float, end: float) -> Tuple[ProvenanceEntry, ...]:
        """Entries recorded in the time window [start, end] (forensic queries)."""
        return tuple(e for e in self._entries if start <= e.timestamp <= end)

    def __len__(self) -> int:
        return len(self._entries)

    def storage_bytes(self) -> int:
        """Approximate storage footprint, for the Section 5 storage discussion.

        Counts the entries themselves (keys, rule labels, timestamps and
        annotations) *and* the archive's metadata — the per-key index, the
        base-key set and the remote-origin pointers — which earlier versions
        undercounted: a long-running archive's index is real residency.
        """
        total = 0
        for entry in self._entries:
            total += entry_bytes(entry)
        for key, indexes in self._by_key.items():
            total += len(str(key)) + 8 * len(indexes)
        for key in self._base:
            total += len(str(key))
        for key, origin in self._remote_origin.items():
            total += len(str(key)) + len(origin)
        return total

    # -- tier accessors (uniform with TieredProvenanceArchive) ----------------

    def resident_bytes(self) -> int:
        """Everything lives in memory: residency is the whole footprint."""
        return self.storage_bytes()

    def spilled_bytes(self) -> int:
        return 0

    def spill_read_count(self) -> int:
        return 0

    def drop_cache(self) -> None:
        """Crash semantics: the in-memory archive models a persistent log
        wholesale, so a crash loses nothing here (no volatile tier)."""

    def age_out(self, now: float) -> int:
        """Drop unpinned entries older than the retention horizon.

        Entries that are pinned — explicitly via :meth:`pin`, or via a
        :meth:`pin_key` reference from an in-flight offline query — are kept
        whatever the horizon says.  Returns the number of entries dropped.
        """
        if self.retention is None:
            return 0
        keep: List[ProvenanceEntry] = []
        new_pinned: Set[int] = set()
        dropped = 0
        for index, entry in enumerate(self._entries):
            pinned = index in self._pinned
            if (
                not pinned
                and entry.key not in self._query_pins
                and now - entry.timestamp > self.retention
            ):
                dropped += 1
                continue
            if pinned:
                new_pinned.add(len(keep))
            keep.append(entry)
        self._entries = keep
        self._pinned = new_pinned
        self._by_key = {}
        for index, entry in enumerate(self._entries):
            self._by_key.setdefault(entry.key, []).append(index)
        return dropped

    def reconstruct_graph(self, root: FactKey) -> DerivationGraph:
        """Rebuild the derivation graph of *root* from archived entries."""
        graph = DerivationGraph()
        by_key: Dict[FactKey, List[ProvenanceEntry]] = {}
        for entry in self._entries:
            by_key.setdefault(entry.key, []).append(entry)

        seen: Set[FactKey] = set()
        stack = [root]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            for entry in by_key.get(key, ()):
                graph.add_derivation(
                    output=Fact(relation=key[0], values=key[1]),
                    rule_label=entry.rule_label,
                    antecedents=[
                        Fact(relation=k[0], values=k[1]) for k in entry.antecedent_keys
                    ],
                    location=entry.node,
                    timestamp=entry.timestamp,
                )
                stack.extend(entry.antecedent_keys)
        return graph
