"""The provenance taxonomy and its mapping to use cases (Sections 4 and 4.6).

The paper classifies network provenance along several axes and summarises
which combination fits each networking use case.  This module encodes that
mapping as data so that applications (and the use-case modules in
:mod:`repro.usecases`) can ask for a recommended provenance configuration
instead of hard-coding one.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple


class StorageAxis(Enum):
    """Local vs distributed provenance (Section 4.1)."""

    LOCAL = "local"
    DISTRIBUTED = "distributed"


class LifetimeAxis(Enum):
    """Online vs offline provenance (Section 4.2)."""

    ONLINE = "online"
    OFFLINE = "offline"


class UseCase(Enum):
    """The networking use cases surveyed in Section 3."""

    REAL_TIME_DIAGNOSTICS = "real_time_diagnostics"
    FORENSICS = "forensics"
    ACCOUNTABILITY = "accountability"
    TRUST_MANAGEMENT = "trust_management"


@dataclass(frozen=True)
class ProvenanceAxes:
    """One point in the taxonomy: which kind of provenance to maintain.

    ``storage_options`` lists the storage axes that work for the use case
    (diagnostics can use either local or distributed provenance);
    ``lifetimes`` lists the lifetime axes required; the boolean flags mark
    whether authentication, condensation and quantification apply.
    """

    storage_options: Tuple[StorageAxis, ...]
    lifetimes: Tuple[LifetimeAxis, ...]
    authenticated: bool
    condensed: bool
    quantifiable: bool

    def describe(self) -> str:
        storage = " or ".join(axis.value for axis in self.storage_options)
        lifetime = " + ".join(axis.value for axis in self.lifetimes)
        extras = []
        if self.authenticated:
            extras.append("authenticated")
        if self.condensed:
            extras.append("condensed")
        if self.quantifiable:
            extras.append("quantifiable")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return f"{lifetime} provenance, stored {storage}{suffix}"


#: Section 4.6's summary table, encoded.
_RECOMMENDATIONS: Dict[UseCase, ProvenanceAxes] = {
    UseCase.REAL_TIME_DIAGNOSTICS: ProvenanceAxes(
        storage_options=(StorageAxis.LOCAL, StorageAxis.DISTRIBUTED),
        lifetimes=(LifetimeAxis.ONLINE,),
        authenticated=True,
        condensed=False,
        quantifiable=False,
    ),
    UseCase.FORENSICS: ProvenanceAxes(
        storage_options=(StorageAxis.LOCAL, StorageAxis.DISTRIBUTED),
        lifetimes=(LifetimeAxis.OFFLINE, LifetimeAxis.ONLINE),
        authenticated=True,
        condensed=False,
        quantifiable=False,
    ),
    UseCase.ACCOUNTABILITY: ProvenanceAxes(
        storage_options=(StorageAxis.LOCAL, StorageAxis.DISTRIBUTED),
        lifetimes=(LifetimeAxis.OFFLINE, LifetimeAxis.ONLINE),
        authenticated=True,
        condensed=False,
        quantifiable=False,
    ),
    UseCase.TRUST_MANAGEMENT: ProvenanceAxes(
        storage_options=(StorageAxis.LOCAL,),
        lifetimes=(LifetimeAxis.ONLINE,),
        authenticated=True,
        condensed=True,
        quantifiable=True,
    ),
}


def recommend_provenance(use_case: UseCase) -> ProvenanceAxes:
    """The provenance configuration Section 4.6 recommends for *use_case*."""
    return _RECOMMENDATIONS[use_case]


def all_recommendations() -> Dict[UseCase, ProvenanceAxes]:
    """The full Section 4.6 summary table."""
    return dict(_RECOMMENDATIONS)
