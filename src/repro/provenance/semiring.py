"""Provenance semirings.

Following Green, Karvounarakis and Tannen ("Provenance semirings", PODS
2007), a derivation annotated with a polynomial over base-tuple variables can
be *evaluated* in any commutative semiring by mapping each variable to a
semiring element and interpreting ``+`` as the semiring sum (alternative
derivations) and ``*`` as the semiring product (joint use in one derivation).

The semirings provided here are the ones the paper needs:

* :data:`BOOLEAN` — does the tuple exist at all (trust decisions in
  Section 4.4: is some trusted set of base tuples sufficient)?
* :data:`COUNTING` — "the count of the number of ways each derivation is
  achievable" (Section 4.5);
* :data:`TRUST` — the security-level semiring of Section 4.5: the trust level
  of a derivation is ``max`` over alternative derivations of the ``min`` over
  the principals joined in each derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Semiring(Generic[T]):
    """A commutative semiring ``(domain, plus, times, zero, one)``.

    ``plus`` combines alternative derivations, ``times`` combines the inputs
    joined within one derivation.  ``zero`` annotates absent tuples and is
    absorbing for ``times``; ``one`` annotates "free" facts.
    """

    name: str
    plus: Callable[[T, T], T]
    times: Callable[[T, T], T]
    zero: T
    one: T

    def sum(self, values) -> T:
        """Fold ``plus`` over *values*, starting from ``zero``."""
        result = self.zero
        for value in values:
            result = self.plus(result, value)
        return result

    def product(self, values) -> T:
        """Fold ``times`` over *values*, starting from ``one``."""
        result = self.one
        for value in values:
            result = self.times(result, value)
        return result


BOOLEAN: Semiring[bool] = Semiring(
    name="boolean",
    plus=lambda a, b: a or b,
    times=lambda a, b: a and b,
    zero=False,
    one=True,
)
"""Existence: a tuple exists iff at least one derivation's inputs all exist."""


COUNTING: Semiring[int] = Semiring(
    name="counting",
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    zero=0,
    one=1,
)
"""Number of distinct derivations (bag semantics / Section 4.5 'count')."""


class TrustSemiring(Semiring[float]):
    """The security-level semiring of Section 4.5.

    The trust of a derivation that joins facts asserted by principals with
    levels ``l1 .. lk`` is ``min(l1, .., lk)`` (a chain is only as strong as
    its weakest link); the trust of a tuple with several alternative
    derivations is the ``max`` over them (use the best-supported one).

    The paper's example: ``<a + a*b>`` with ``level(a)=2, level(b)=1``
    evaluates to ``max(2, min(2, 1)) = 2``.
    """

    #: Level assigned to an absent derivation (identity of ``max``).
    UNTRUSTED = float("-inf")
    #: Level assigned to the empty join (identity of ``min``).
    FULLY_TRUSTED = float("inf")

    def __init__(self) -> None:
        super().__init__(
            name="trust",
            plus=max,
            times=min,
            zero=TrustSemiring.UNTRUSTED,
            one=TrustSemiring.FULLY_TRUSTED,
        )


TRUST = TrustSemiring()
"""Singleton instance of the security-level semiring."""
