"""Derivation graphs: the explicit provenance trees of Figures 1 and 2.

A derivation graph records, for each tuple, the rule applications (operator
nodes) that produced it and the antecedent tuples each application consumed.
Tuple nodes carry the stream annotations the paper adds for network
provenance — location, creation timestamp and time-to-live — and, for
authenticated provenance, the asserting principal (``says``).  Operator nodes
are annotated with the rule label and the location (context) where the rule
executed, exactly as in Figure 2.

The same structure serves both *local* provenance (the whole tree available
at the tuple's storage node) and as the result of reconstructing
*distributed* provenance via traceback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.engine.tuples import Fact, FactKey
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.polynomial import ProvenanceExpression, p_var


@dataclass(frozen=True)
class DerivationNode:
    """A tuple node in a derivation graph."""

    key: FactKey
    location: Optional[str] = None
    asserted_by: Optional[str] = None
    timestamp: float = 0.0
    ttl: Optional[float] = None

    @property
    def relation(self) -> str:
        return self.key[0]

    @property
    def values(self) -> Tuple[object, ...]:
        return self.key[1]

    def label(self) -> str:
        rendered = ", ".join(str(v) for v in self.values)
        text = f"{self.relation}({rendered})"
        if self.asserted_by:
            text = f"{self.asserted_by} says {text}"
        if self.location:
            text = f"{text} @{self.location}"
        return text


@dataclass(frozen=True)
class OperatorNode:
    """A rule-application (oval) node in a derivation graph."""

    rule_label: str
    location: Optional[str]
    output: FactKey
    inputs: Tuple[FactKey, ...]
    timestamp: float = 0.0

    def label(self) -> str:
        where = f" @{self.location}" if self.location else ""
        return f"{self.rule_label}{where}"


class DerivationGraph:
    """A (possibly DAG-shaped) provenance graph over tuple and operator nodes."""

    def __init__(self) -> None:
        self._tuples: Dict[FactKey, DerivationNode] = {}
        self._operators: List[OperatorNode] = []
        self._producers: Dict[FactKey, List[int]] = {}

    # -- construction ---------------------------------------------------------

    def add_tuple(self, node: DerivationNode) -> DerivationNode:
        existing = self._tuples.get(node.key)
        if existing is None:
            self._tuples[node.key] = node
            return node
        return existing

    def add_fact(self, fact: Fact, location: Optional[str] = None) -> DerivationNode:
        return self.add_tuple(
            DerivationNode(
                key=fact.key(),
                location=location or fact.origin,
                asserted_by=fact.asserted_by,
                timestamp=fact.timestamp,
                ttl=fact.ttl,
            )
        )

    def add_derivation(
        self,
        output: Fact,
        rule_label: str,
        antecedents: Iterable[Fact],
        location: Optional[str] = None,
        timestamp: float = 0.0,
    ) -> OperatorNode:
        """Record one rule firing: *output* derived from *antecedents* by *rule_label*."""
        out_node = self.add_fact(output, location=location)
        input_keys = []
        for antecedent in antecedents:
            self.add_fact(antecedent)
            input_keys.append(antecedent.key())
        operator = OperatorNode(
            rule_label=rule_label,
            location=location,
            output=out_node.key,
            inputs=tuple(input_keys),
            timestamp=timestamp,
        )
        index = len(self._operators)
        self._operators.append(operator)
        self._producers.setdefault(out_node.key, []).append(index)
        return operator

    def merge(self, other: "DerivationGraph") -> None:
        """Union *other* into this graph (used when piggy-backed trees arrive)."""
        for node in other._tuples.values():
            self.add_tuple(node)
        known = {
            (op.rule_label, op.location, op.output, op.inputs)
            for op in self._operators
            if op is not None
        }
        for operator in other._operators:
            if operator is None:
                continue
            signature = (
                operator.rule_label,
                operator.location,
                operator.output,
                operator.inputs,
            )
            if signature in known:
                continue
            known.add(signature)
            index = len(self._operators)
            self._operators.append(operator)
            self._producers.setdefault(operator.output, []).append(index)

    def invalidate(self, key: FactKey) -> bool:
        """Forget *key*: its tuple node and the derivations that produced it.

        Used when a tuple is retracted: every query path rooted at a fact key
        (``producers``, ``base_tuples``, ``subgraph``, expressions, renders)
        stops seeing *key*'s derivations.  The producing operators are
        tombstoned in place (indexes of other keys stay valid) so a later
        identical re-derivation merges back in instead of being deduplicated
        against the withdrawn one.  Downstream tuples are the caller's
        responsibility — the retraction cascade invalidates each one as it
        is deleted.  Returns True when the graph knew the key.
        """
        removed = self._tuples.pop(key, None) is not None
        indexes = self._producers.pop(key, None)
        if indexes:
            removed = True
            for index in indexes:
                self._operators[index] = None
        return removed

    # -- structure ------------------------------------------------------------

    def structure(self) -> Tuple[FrozenSet, FrozenSet]:
        """A hashable structural fingerprint of the graph.

        Two graphs with equal structures contain the same tuple nodes (key,
        location, asserting principal) and the same set of rule applications
        (label, location, output, inputs) — regardless of the order the
        derivations were recorded in.  This is how the in-network provenance
        query engine is checked against the zero-cost ``traceback`` oracle.
        """
        tuples = frozenset(
            (node.key, node.location, node.asserted_by)
            for node in self._tuples.values()
        )
        operators = frozenset(
            (op.rule_label, op.location, op.output, op.inputs)
            for op in self._operators
            if op is not None
        )
        return (tuples, operators)

    def same_structure(self, other: "DerivationGraph") -> bool:
        """True when *other* records the same tuples and derivations."""
        return self.structure() == other.structure()

    def tuple_node(self, key: FactKey) -> Optional[DerivationNode]:
        return self._tuples.get(key)

    def tuple_nodes(self) -> Tuple[DerivationNode, ...]:
        return tuple(self._tuples.values())

    def operators(self) -> Tuple[OperatorNode, ...]:
        return tuple(op for op in self._operators if op is not None)

    def producers(self, key: FactKey) -> Tuple[OperatorNode, ...]:
        """The rule applications that derived *key* (one per alternative derivation)."""
        return tuple(self._operators[i] for i in self._producers.get(key, ()))

    def is_base(self, key: FactKey) -> bool:
        """True when *key* has no recorded derivation (it is an input leaf)."""
        return key in self._tuples and key not in self._producers

    def base_tuples(self, root: FactKey) -> FrozenSet[FactKey]:
        """The leaves of *root*'s derivation: the base input tuples (Figure 1)."""
        leaves: set = set()
        seen: set = set()
        stack = [root]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            producers = self._producers.get(key)
            if not producers:
                leaves.add(key)
                continue
            for index in producers:
                stack.extend(self._operators[index].inputs)
        return frozenset(leaves)

    def subgraph(self, root: FactKey) -> "DerivationGraph":
        """The derivation graph restricted to everything reachable from *root*."""
        result = DerivationGraph()
        seen: set = set()
        stack = [root]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            node = self._tuples.get(key)
            if node is not None:
                result.add_tuple(node)
            for index in self._producers.get(key, ()):
                operator = self._operators[index]
                for input_key in operator.inputs:
                    input_node = self._tuples.get(input_key)
                    if input_node is not None:
                        result.add_tuple(input_node)
                result._operators.append(operator)
                result._producers.setdefault(key, []).append(
                    len(result._operators) - 1
                )
                stack.extend(operator.inputs)
        return result

    # -- conversions -----------------------------------------------------------

    def to_expression(
        self, root: FactKey, variable_of: Optional[callable] = None
    ) -> ProvenanceExpression:
        """Provenance polynomial of *root* over its base tuples (or principals).

        ``variable_of`` maps a leaf :class:`DerivationNode` to the variable
        name used in the polynomial; the default uses the asserting principal
        when present (the paper's condensed form over principals) and
        otherwise a ``relation(values)`` key.
        """
        naming = variable_of or _default_variable

        cache: Dict[FactKey, ProvenanceExpression] = {}
        in_progress: set = set()

        def expression_of(key: FactKey) -> ProvenanceExpression:
            if key in cache:
                return cache[key]
            if key in in_progress:
                # Cycle through the provenance graph (possible in recursive
                # programs when a tuple re-derives itself): that alternative
                # contributes nothing new.
                return ProvenanceExpression.zero()
            producers = self._producers.get(key)
            node = self._tuples.get(key)
            if not producers:
                leaf = node or DerivationNode(key=key)
                result = p_var(naming(leaf))
                cache[key] = result
                return result
            in_progress.add(key)
            total = ProvenanceExpression.zero()
            for index in producers:
                operator = self._operators[index]
                term = ProvenanceExpression.one()
                for input_key in operator.inputs:
                    term = term * expression_of(input_key)
                total = total + term
            in_progress.discard(key)
            cache[key] = total
            return total

        return expression_of(root)

    def to_condensed(
        self, root: FactKey, variable_of: Optional[callable] = None
    ) -> CondensedProvenance:
        """Condensed provenance annotation of *root* (Section 4.4)."""
        return CondensedProvenance(
            expression=self.to_expression(root, variable_of).condense()
        )

    # -- rendering --------------------------------------------------------------

    def render(self, root: FactKey, indent: str = "  ") -> str:
        """ASCII rendering of *root*'s derivation tree (Figures 1 / 2 style)."""
        lines: List[str] = []

        def walk(key: FactKey, depth: int, seen: Tuple[FactKey, ...]) -> None:
            node = self._tuples.get(key) or DerivationNode(key=key)
            lines.append(f"{indent * depth}{node.label()}")
            if key in seen:
                lines.append(f"{indent * (depth + 1)}(cycle)")
                return
            for operator in self.producers(key):
                lines.append(f"{indent * (depth + 1)}[{operator.label()}]")
                for input_key in operator.inputs:
                    walk(input_key, depth + 2, seen + (key,))

        walk(root, 0, ())
        return "\n".join(lines)

    def __len__(self) -> int:
        live = sum(1 for op in self._operators if op is not None)
        return len(self._tuples) + live


def _default_variable(node: DerivationNode) -> str:
    if node.asserted_by:
        return node.asserted_by
    rendered = ",".join(str(v) for v in node.values)
    return f"{node.relation}({rendered})"
