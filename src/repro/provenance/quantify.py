"""Quantifiable provenance (Section 4.5).

The semiring formulation permits quantifiable notions of trust evaluated
directly over a tuple's provenance expression:

* **trust level** — with principals assigned security levels, the trust of a
  derivation is the ``min`` of its inputs' levels, and the trust of a tuple
  is the ``max`` over its alternative derivations.  The paper's example:
  ``<a + a*b>`` with ``level(a)=2, level(b)=1`` yields
  ``max(2, min(2,1)) = 2``.
* **count** — the number of distinct ways the tuple can be derived.
* **vote** — the number of distinct principals that (jointly) support at
  least one derivation; e.g. "accept an update only if over K principals
  assert it".
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.provenance.condensed import CondensedProvenance
from repro.provenance.polynomial import ProvenanceExpression
from repro.provenance.semiring import COUNTING, TRUST
from repro.security.principal import PrincipalRegistry

ExpressionLike = Union[ProvenanceExpression, CondensedProvenance]


def _expression(value: ExpressionLike) -> ProvenanceExpression:
    if isinstance(value, CondensedProvenance):
        return value.expression
    return value


def trust_level(
    provenance: ExpressionLike,
    levels: Union[Mapping[str, int], PrincipalRegistry],
    default_level: Optional[int] = None,
) -> float:
    """Security level of a tuple given per-principal levels.

    ``levels`` is either a plain mapping from principal name to level or a
    :class:`PrincipalRegistry`.  Principals missing from the mapping get
    ``default_level`` when provided, otherwise the semiring identity
    (fully trusted) — matching the paper's "assume trusted unless stated"
    reading of partially specified policies.
    """
    expression = _expression(provenance)
    if isinstance(levels, PrincipalRegistry):
        assignment = {name: levels.security_level(name) for name in expression.variables()}
    else:
        assignment = dict(levels)
        if default_level is not None:
            for name in expression.variables():
                assignment.setdefault(name, default_level)
    return expression.evaluate(TRUST, assignment)


def count_derivations(provenance: ExpressionLike) -> int:
    """Number of distinct derivations of the tuple (counting semiring).

    Every base variable counts as one way of being present, so the count of
    ``a + a*b`` is 2: one derivation through ``a`` alone and one through
    ``a`` joined with ``b``.
    """
    expression = _expression(provenance)
    assignment = {name: 1 for name in expression.variables()}
    return expression.evaluate(COUNTING, assignment)


def vote_principals(provenance: ExpressionLike) -> int:
    """Number of distinct principals participating in any derivation."""
    expression = _expression(provenance)
    return len(expression.variables())


def accept_by_vote(provenance: ExpressionLike, threshold: int) -> bool:
    """Quantified trust policy: accept only if over *threshold* principals assert it."""
    return vote_principals(provenance) >= threshold


def accept_by_trust_level(
    provenance: ExpressionLike,
    levels: Union[Mapping[str, int], PrincipalRegistry],
    minimum_level: int,
    default_level: Optional[int] = None,
) -> bool:
    """Trust policy: accept when the derivation's trust level reaches *minimum_level*."""
    return trust_level(provenance, levels, default_level=default_level) >= minimum_level
