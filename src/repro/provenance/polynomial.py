"""Provenance polynomials.

A provenance expression annotates one tuple with how it was derived from
base tuples (or, in the paper's condensed form, from the *principals* that
asserted the base tuples): ``+`` separates alternative derivations and ``*``
combines the inputs joined within one derivation.  The expression
``<a + a*b>`` from Figure 2 reads "derivable from ``a`` alone, or from ``a``
joined with ``b``".

Internally an expression is kept in a normal form as a set of *monomials*
(each monomial a frozen multiset of variables).  Under the idempotent,
absorptive semirings relevant for trust (Section 4.4) the canonical minimal
form is obtained by absorption — ``a + a*b == a`` — implemented in
:meth:`ProvenanceExpression.condense`.  For semirings where multiplicity
matters (counting), monomial multiplicities are preserved until the caller
explicitly condenses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.provenance.semiring import Semiring

#: One monomial: the multiset of variables joined in one derivation,
#: represented as a sorted tuple of (variable, exponent) pairs.
Monomial = Tuple[Tuple[str, int], ...]


def _monomial_from_vars(variables: Iterable[str]) -> Monomial:
    counts = Counter(variables)
    return tuple(sorted(counts.items()))


def _monomial_times(left: Monomial, right: Monomial) -> Monomial:
    counts = Counter(dict(left))
    for name, exponent in right:
        counts[name] += exponent
    return tuple(sorted(counts.items()))


def _monomial_support(monomial: Monomial) -> FrozenSet[str]:
    return frozenset(name for name, _ in monomial)


@dataclass(frozen=True)
class ProvenanceExpression:
    """A provenance polynomial in monomial normal form.

    ``monomials`` maps each monomial to its multiplicity (the number of
    distinct derivations sharing that exact combination of inputs).
    The zero polynomial (no derivation) has no monomials; the one polynomial
    (axiomatically present) has the single empty monomial.
    """

    monomials: Tuple[Tuple[Monomial, int], ...]

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def zero() -> "ProvenanceExpression":
        return ProvenanceExpression(monomials=())

    @staticmethod
    def one() -> "ProvenanceExpression":
        return ProvenanceExpression(monomials=(((), 1),))

    @staticmethod
    def var(name: str) -> "ProvenanceExpression":
        return ProvenanceExpression(monomials=((_monomial_from_vars([name]), 1),))

    @staticmethod
    def from_monomials(monomials: Mapping[Monomial, int]) -> "ProvenanceExpression":
        cleaned = {m: c for m, c in monomials.items() if c > 0}
        return ProvenanceExpression(monomials=tuple(sorted(cleaned.items())))

    # -- algebra --------------------------------------------------------------

    def __add__(self, other: "ProvenanceExpression") -> "ProvenanceExpression":
        combined: Dict[Monomial, int] = dict(self.monomials)
        for monomial, count in other.monomials:
            combined[monomial] = combined.get(monomial, 0) + count
        return ProvenanceExpression.from_monomials(combined)

    def __mul__(self, other: "ProvenanceExpression") -> "ProvenanceExpression":
        product: Dict[Monomial, int] = {}
        for left, left_count in self.monomials:
            for right, right_count in other.monomials:
                key = _monomial_times(left, right)
                product[key] = product.get(key, 0) + left_count * right_count
        return ProvenanceExpression.from_monomials(product)

    # -- structure ------------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        return not self.monomials

    @property
    def is_one(self) -> bool:
        return self.monomials == (((), 1),)

    def variables(self) -> FrozenSet[str]:
        """All base-tuple / principal variables mentioned in the expression."""
        names = set()
        for monomial, _ in self.monomials:
            for name, _exp in monomial:
                names.add(name)
        return frozenset(names)

    def monomial_supports(self) -> Tuple[FrozenSet[str], ...]:
        """The variable sets of each monomial (exponents and counts dropped)."""
        return tuple(_monomial_support(m) for m, _ in self.monomials)

    def degree(self) -> int:
        """Largest number of variables (with multiplicity) joined in one derivation."""
        if self.is_zero:
            return 0
        return max(sum(exp for _, exp in monomial) for monomial, _ in self.monomials)

    # -- condensation (Section 4.4) -------------------------------------------

    def condense(self) -> "ProvenanceExpression":
        """Minimise under idempotence and absorption: ``a + a*b -> a``.

        The result is the unique minimal DNF of the (monotone) boolean
        function the expression denotes: duplicate variables collapse
        (``a*a -> a``), multiplicities drop, and any monomial whose support is
        a superset of another monomial's support is absorbed.
        """
        supports = {frozenset(support) for support in self.monomial_supports()}
        minimal = [
            support
            for support in supports
            if not any(other < support for other in supports)
        ]
        condensed = {
            _monomial_from_vars(sorted(support)): 1 for support in minimal
        }
        return ProvenanceExpression.from_monomials(condensed)

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, semiring: Semiring, assignment: Mapping[str, object]) -> object:
        """Evaluate the polynomial in *semiring* under a variable *assignment*.

        Missing variables evaluate to the semiring ``one`` so that partially
        specified assignments behave like "assume trusted/present".
        Multiplicities are folded via repeated addition, so counting semiring
        evaluation returns the true number of derivations.
        """
        total = semiring.zero
        for monomial, count in self.monomials:
            factors = []
            for name, exponent in monomial:
                value = assignment.get(name, semiring.one)
                factors.extend([value] * exponent)
            term = semiring.product(factors)
            for _ in range(count):
                total = semiring.plus(total, term)
        return total

    # -- rendering / wire size ------------------------------------------------

    def to_string(self) -> str:
        """Human-readable form matching the paper's ``<a+a*b>`` notation."""
        if self.is_zero:
            return "0"
        rendered_terms = []
        for monomial, count in self.monomials:
            if not monomial:
                factor = "1"
            else:
                parts = []
                for name, exponent in monomial:
                    parts.extend([name] * exponent)
                factor = "*".join(parts)
            if count > 1:
                factor = f"{count}*{factor}"
            rendered_terms.append(factor)
        return "+".join(rendered_terms)

    def serialized_size(self) -> int:
        """Bytes this expression occupies on the wire (UTF-8 of its string form)."""
        return len(self.to_string().encode("utf-8"))

    def __str__(self) -> str:
        return f"<{self.to_string()}>"


# Convenience constructors used across examples and tests -------------------

def p_zero() -> ProvenanceExpression:
    """The zero polynomial (no derivation)."""
    return ProvenanceExpression.zero()


def p_one() -> ProvenanceExpression:
    """The one polynomial (axiomatically present)."""
    return ProvenanceExpression.one()


def p_var(name: str) -> ProvenanceExpression:
    """A single base-tuple / principal variable."""
    return ProvenanceExpression.var(name)


def p_sum(*expressions: ProvenanceExpression) -> ProvenanceExpression:
    """Sum (alternative derivations) of *expressions*."""
    result = ProvenanceExpression.zero()
    for expression in expressions:
        result = result + expression
    return result


def p_product(*expressions: ProvenanceExpression) -> ProvenanceExpression:
    """Product (joint derivation) of *expressions*."""
    result = ProvenanceExpression.one()
    for expression in expressions:
        result = result * expression
    return result
