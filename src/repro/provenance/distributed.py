"""Distributed provenance (Section 4.1).

Under distributed provenance each node stores only *pointers*: for every
locally derived tuple it records which rule fired and which antecedent tuples
it consumed, remembering for each antecedent the node where that tuple's own
provenance lives.  Nothing extra is shipped with the tuples themselves, so
there is no communication overhead during normal operation; reconstructing a
derivation requires a recursive *traceback query* that walks the pointers
across nodes — the analogue of IP traceback the paper draws.

The :class:`DistributedProvenanceStore` is the per-node pointer table, and
:func:`traceback` is the distributed query: given a resolver that can reach
other nodes' stores (in the simulator, a dictionary of stores; over a real
network, an RPC), it rebuilds the same :class:`DerivationGraph` that local
provenance would have kept, while counting how many remote store lookups
(messages) the reconstruction needed — the cost that experiment E6 compares
against local provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.engine.tuples import Derivation, Fact, FactKey
from repro.provenance.graph import DerivationGraph, DerivationNode


@dataclass(frozen=True)
class ProvenancePointer:
    """One recorded rule firing: output derived from inputs located elsewhere.

    ``inputs`` pairs each antecedent's key with the node that stores that
    antecedent's own provenance (``None`` for base tuples local to this node).
    """

    output: FactKey
    rule_label: str
    node: str
    inputs: Tuple[Tuple[FactKey, Optional[str]], ...]
    timestamp: float = 0.0


@dataclass
class TracebackResult:
    """Result of a distributed provenance reconstruction."""

    root: FactKey
    graph: DerivationGraph
    nodes_visited: Tuple[str, ...]
    remote_lookups: int
    missing: Tuple[FactKey, ...]

    @property
    def complete(self) -> bool:
        return not self.missing


class DistributedProvenanceStore:
    """Per-node pointer table for distributed provenance."""

    def __init__(self, node: str) -> None:
        self.node = node
        self._pointers: Dict[FactKey, List[ProvenancePointer]] = {}
        self._base: Set[FactKey] = set()
        self._remote_origin: Dict[FactKey, str] = {}

    # -- recording -------------------------------------------------------------

    def record_base(self, fact: Fact) -> None:
        """Record that *fact* is a base input tuple at this node."""
        self._base.add(fact.key())

    def record_remote(self, fact: Fact, origin: Optional[str]) -> None:
        """Record that *fact* arrived from *origin*, which holds its provenance."""
        if origin is not None and origin != self.node:
            self._remote_origin[fact.key()] = origin

    def record_derivation(self, derivation: Derivation) -> ProvenancePointer:
        """Record a local rule firing as a pointer entry."""
        inputs = []
        for antecedent in derivation.antecedents:
            key = antecedent.key()
            origin = self._remote_origin.get(key)
            inputs.append((key, origin))
        pointer = ProvenancePointer(
            output=derivation.fact.key(),
            rule_label=derivation.rule_label,
            node=self.node,
            inputs=tuple(inputs),
            timestamp=derivation.timestamp,
        )
        self._pointers.setdefault(pointer.output, []).append(pointer)
        return pointer

    def invalidate(self, key: FactKey) -> bool:
        """Drop every pointer entry for *key* (its tuple was retracted).

        A later :func:`traceback` through this node reports the key as
        missing instead of replaying stale derivations.  Returns True when
        the store had entries for the key.
        """
        had_pointers = self._pointers.pop(key, None) is not None
        was_base = key in self._base
        self._base.discard(key)
        self._remote_origin.pop(key, None)
        return had_pointers or was_base

    # -- local queries -----------------------------------------------------------

    def pointers(self, key: FactKey) -> Tuple[ProvenancePointer, ...]:
        return tuple(self._pointers.get(key, ()))

    def is_base(self, key: FactKey) -> bool:
        return key in self._base

    def knows(self, key: FactKey) -> bool:
        return key in self._pointers or key in self._base

    def storage_overhead(self) -> int:
        """Number of pointer entries stored at this node (E6's storage metric)."""
        return sum(len(pointers) for pointers in self._pointers.values()) + len(self._base)

    def keys(self) -> Tuple[FactKey, ...]:
        return tuple(self._pointers) + tuple(self._base)


Resolver = Callable[[str], Optional[DistributedProvenanceStore]]


def traceback(
    root: FactKey,
    start_node: str,
    resolver: Resolver,
    max_depth: int = 10_000,
) -> TracebackResult:
    """Reconstruct the derivation graph of *root* by walking pointers across nodes.

    ``resolver`` maps a node name to its :class:`DistributedProvenanceStore`
    (or ``None`` if unreachable).  ``remote_lookups`` counts one lookup per
    *remote pointer dereference* — every time following a pointer input
    requires consulting a store on a different node than the one holding the
    pointer, including dereferences that fail because the target store is
    unreachable (the request was still sent).  ``nodes_visited`` lists only
    nodes whose store actually answered.

    This function resolves stores directly (a Python call, not a simulated
    message): it is the *zero-cost oracle* against which the in-network
    query engine (:mod:`repro.net.query`) is validated — on a static
    topology the engine must reconstruct a graph with the same structure
    while additionally paying per-message byte and latency costs.
    """
    graph = DerivationGraph()
    visited_nodes: List[str] = []
    missing: List[FactKey] = []
    remote_lookups = 0
    seen: Set[Tuple[FactKey, str]] = set()

    def visit(key: FactKey, node_name: str, depth: int, via_remote: bool) -> None:
        nonlocal remote_lookups
        if depth > max_depth or (key, node_name) in seen:
            return
        seen.add((key, node_name))
        if via_remote:
            # One remote pointer dereference = one lookup message, whether
            # or not the target store turns out to be reachable.
            remote_lookups += 1
        store = resolver(node_name)
        if store is None:
            missing.append(key)
            return
        if node_name not in visited_nodes:
            visited_nodes.append(node_name)
        graph.add_tuple(DerivationNode(key=key, location=node_name))
        if store.is_base(key):
            return
        pointers = store.pointers(key)
        if not pointers:
            missing.append(key)
            return
        for pointer in pointers:
            antecedent_facts = [
                Fact(relation=input_key[0], values=input_key[1])
                for input_key, _ in pointer.inputs
            ]
            graph.add_derivation(
                output=Fact(relation=key[0], values=key[1]),
                rule_label=pointer.rule_label,
                antecedents=antecedent_facts,
                location=pointer.node,
                timestamp=pointer.timestamp,
            )
            for input_key, origin in pointer.inputs:
                next_node = origin or node_name
                visit(input_key, next_node, depth + 1, next_node != node_name)

    visit(root, start_node, 0, False)
    return TracebackResult(
        root=root,
        graph=graph,
        nodes_visited=tuple(visited_nodes),
        remote_lookups=remote_lookups,
        missing=tuple(missing),
    )
