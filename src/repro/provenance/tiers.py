"""Tiered provenance storage: bounded hot tier over an append-only spill log.

The offline archive's forensics contract — anything ever derived, retracted
or expired stays answerable — is bought in
:class:`~repro.provenance.store.OfflineProvenanceArchive` with unbounded
in-memory lists, which caps run length long before CPU does.  This module
restructures that archive into two tiers:

* a **hot tier**: a size-bounded read cache of :class:`ProvenanceEntry`
  groups (all entries of one derived key), evicted LRU-by-last-touch in a
  deterministic order (dict insertion/touch order — never hash order);
* a **spill tier**: an append-only log behind the :class:`SpillBackend`
  protocol, written *through* on every record, so the forensics contract
  never depends on what happens to be cached.  The per-key index into the
  log stays in memory (it is small metadata, not entry payload) and is the
  ``log-file-plus-per-key-index`` shape of the ROADMAP's storage-tier item.

Spill records are rendered as ``repr`` of pure literals and parsed back with
:func:`ast.literal_eval`: byte-for-byte deterministic across processes (no
pickle, whose frozenset ordering is hash-seed dependent), so the
``provenance_bytes_spilled`` counter is identical between the serial and
sharded backends.

Condensed annotations are the default representation inside the tiers:
per-key annotations are merged (``+`` then absorption, exactly like the
local store) and *interned* by their normal-form monomials, so structurally
identical annotations share one object.  The merged table is bounded by the
number of distinct keys and expressions — network-state size, not run
length.

Crash semantics: :meth:`TieredProvenanceArchive.drop_cache` models a node
crash — the hot tier (volatile cache) is lost, the spill log survives, and
every archived derivation remains answerable through ``mode="offline"``
queries.  The archive pickles across the sharded backend's spawn boundary:
the spill backend drops its open file handles in ``__getstate__`` and
reopens them lazily.
"""

from __future__ import annotations

import ast
import itertools
import os
import tempfile
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

try:  # pragma: no cover - typing fallback for very old interpreters
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from repro.engine.tuples import Derivation, Fact, FactKey
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.graph import DerivationGraph
from repro.provenance.polynomial import ProvenanceExpression
from repro.provenance.store import ProvenanceEntry, entry_bytes

#: The offline-archive representations ``EngineConfig.provenance_store`` /
#: ``NetOptions.provenance_store`` accept.
PROVENANCE_STORES = ("memory", "tiered")

#: Default hot-tier capacity, in archived entries.
DEFAULT_HOT_TIER_ENTRIES = 256

#: Per-process sequence for spill file names: two archives for the same node
#: (for example a serial and a sharded run of the same network sharing one
#: ``spill_dir``) must never append to each other's logs.  Deterministic —
#: no wall clock, no randomness — and irrelevant to simulation results.
_spill_sequence = itertools.count()


def _safe_name(node: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in node)


def encode_entry(entry: ProvenanceEntry) -> bytes:
    """One spill-log record: ``repr`` of pure literals, newline terminated.

    The annotation is reduced to its expression's normal-form monomials —
    nested tuples of strings and ints — so the record round-trips exactly
    through :func:`ast.literal_eval` and its byte length is identical in
    every process that records the same derivation.
    """
    annotation = entry.annotation
    monomials = None if annotation is None else annotation.expression.monomials
    record = (
        entry.key,
        entry.rule_label,
        entry.node,
        entry.antecedent_keys,
        entry.timestamp,
        entry.expires_at,
        monomials,
    )
    return (repr(record) + "\n").encode("utf-8")


def decode_entry(
    record: bytes, intern_annotation=None
) -> ProvenanceEntry:
    """Parse one spill-log record back into a :class:`ProvenanceEntry`.

    ``intern_annotation`` maps an annotation to its interned (shared)
    object; reconstructed entries then reference the same
    :class:`CondensedProvenance` instances as hot ones.
    """
    key, rule_label, node, antecedents, timestamp, expires_at, monomials = (
        ast.literal_eval(record.decode("utf-8"))
    )
    annotation = None
    if monomials is not None:
        annotation = CondensedProvenance(
            expression=ProvenanceExpression(monomials=monomials)
        )
        if intern_annotation is not None:
            annotation = intern_annotation(annotation)
    return ProvenanceEntry(
        key=key,
        rule_label=rule_label,
        node=node,
        antecedent_keys=antecedents,
        timestamp=timestamp,
        expires_at=expires_at,
        annotation=annotation,
    )


class SpillBackend(Protocol):
    """The append-only spill tier behind the tiered archive.

    ``append`` returns the ``(offset, length)`` slot of the record;
    ``read`` returns exactly the appended bytes.  Implementations must
    survive pickling (drop open handles, reopen lazily) because archives
    cross the sharded backend's spawn boundary inside their engines.
    """

    def append(self, record: bytes) -> Tuple[int, int]: ...

    def read(self, offset: int, length: int) -> bytes: ...

    def close(self) -> None: ...


class LogSpillBackend:
    """Append-only log file (the ``log-file-plus-per-key-index`` backend).

    The file is created lazily on first append (truncating any stale file a
    previous process left at the path) and never truncated afterwards —
    including across pickling, which drops the handles and reopens in append
    mode so a recalled worker kernel keeps extending the same log.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._bytes_written = 0
        self._writer = None
        self._reader = None

    # -- pickling (sharded spawn boundary) ------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_writer"] = None
        state["_reader"] = None
        return state

    # -- SpillBackend ---------------------------------------------------------

    def append(self, record: bytes) -> Tuple[int, int]:
        if self._writer is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            # First-ever append truncates (a fresh archive owns its path);
            # reopening after a pickle round-trip appends.
            mode = "ab" if self._bytes_written else "wb"
            self._writer = open(self.path, mode)
        offset = self._bytes_written
        self._writer.write(record)
        # Reads must observe every appended record immediately: the read
        # handle is a separate descriptor on the same file.
        self._writer.flush()
        self._bytes_written += len(record)
        return offset, len(record)

    def read(self, offset: int, length: int) -> bytes:
        if self._reader is None:
            self._reader = open(self.path, "rb")
        self._reader.seek(offset)
        return self._reader.read(length)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._reader is not None:
            self._reader.close()
            self._reader = None


class TieredProvenanceArchive:
    """Drop-in offline archive with a bounded hot tier and a spill log.

    Presents the exact surface of
    :class:`~repro.provenance.store.OfflineProvenanceArchive` — ``record`` /
    ``record_base`` / ``record_remote`` / ``entries`` / ``knows`` /
    ``origin_of`` / ``pin`` / ``age_out`` / ``reconstruct_graph`` — so the
    offline query path (:mod:`repro.net.query`) reads through it unchanged.
    Every record is written through to the spill log before it is cached, so
    eviction can never lose history: the forensics contract holds for any
    hot-tier capacity, down to one entry.

    Observability: :meth:`resident_bytes` (hot payload plus the interned
    annotation table — what the capacity knob bounds), :meth:`spilled_bytes`
    (cumulative log bytes) and :meth:`spill_read_count` (entries fetched
    back from the log) feed the ``provenance_bytes_resident`` /
    ``provenance_bytes_spilled`` / ``spill_reads`` network statistics.
    """

    def __init__(
        self,
        node: str,
        retention: Optional[float] = None,
        hot_entries: int = DEFAULT_HOT_TIER_ENTRIES,
        spill_dir: Optional[str] = None,
        spill: Optional[SpillBackend] = None,
    ) -> None:
        if hot_entries < 0:
            raise ValueError(f"hot_entries must be >= 0, got {hot_entries}")
        self.node = node
        self.retention = retention
        self.hot_entries = hot_entries
        if spill is None:
            directory = spill_dir or os.path.join(
                tempfile.gettempdir(), f"repro-spill-{os.getpid()}"
            )
            name = f"{_safe_name(node)}.{next(_spill_sequence)}.plog"
            spill = LogSpillBackend(os.path.join(directory, name))
        self._spill = spill
        #: entry id -> (key, timestamp, offset, length): the in-memory index
        #: over the log.  Insertion-ordered by construction (ids are assigned
        #: sequentially), which is what keeps full scans in record order.
        self._slots: Dict[int, Tuple[FactKey, float, int, int]] = {}
        #: Per-key entry ids — the per-key index of the spill tier.
        self._by_key: Dict[FactKey, List[int]] = {}
        self._next_id = 0
        self._pinned: Set[int] = set()
        #: Query pins: key -> refcount of in-flight offline queries rooted
        #: there; ``age_out`` refuses to drop entries of pinned keys.
        self._query_pins: Dict[FactKey, int] = {}
        self._base: Set[FactKey] = set()
        self._remote_origin: Dict[FactKey, str] = {}
        #: Per-key merged condensed annotation (structure-sharing default).
        self._condensed: Dict[FactKey, CondensedProvenance] = {}
        #: Interned annotations by normal-form monomials: structurally equal
        #: expressions share one object across keys and entries.
        self._intern: Dict[tuple, CondensedProvenance] = {}
        #: Hot tier: key -> {entry id -> entry}, LRU by last touch.  A group
        #: is always cached whole (all live entries of its key) or not at
        #: all, so a hit answers the per-key lookup without touching disk.
        self._hot: "OrderedDict[FactKey, Dict[int, ProvenanceEntry]]" = (
            OrderedDict()
        )
        self._hot_count = 0
        self._bytes_spilled = 0
        self._spill_reads = 0

    # -- annotation interning --------------------------------------------------

    def _intern_annotation(
        self, annotation: CondensedProvenance
    ) -> CondensedProvenance:
        shared = self._intern.get(annotation.expression.monomials)
        if shared is None:
            shared = self._intern[annotation.expression.monomials] = annotation
        return shared

    def _merge_condensed(
        self, key: FactKey, annotation: CondensedProvenance
    ) -> CondensedProvenance:
        existing = self._condensed.get(key)
        merged = annotation if existing is None else existing.merge(annotation)
        merged = self._intern_annotation(merged)
        self._condensed[key] = merged
        return merged

    # -- recording (write-through) ---------------------------------------------

    def record_base(self, fact: Fact) -> None:
        """Archive that *fact* was asserted as a base tuple at this node."""
        self._base.add(fact.key())

    def record_remote(self, fact: Fact, origin: Optional[str]) -> None:
        """Archive that *fact* arrived from *origin*, which holds its provenance."""
        if origin is not None and origin != self.node:
            self._remote_origin[fact.key()] = origin

    def record(
        self,
        derivation: Derivation,
        annotation: Optional[CondensedProvenance] = None,
    ) -> int:
        fact = derivation.fact
        key = fact.key()
        stored_annotation = None
        if annotation is not None:
            stored_annotation = self._merge_condensed(key, annotation)
        entry = ProvenanceEntry(
            key=key,
            rule_label=derivation.rule_label,
            node=derivation.node or self.node,
            antecedent_keys=tuple(a.key() for a in derivation.antecedents),
            timestamp=derivation.timestamp,
            expires_at=fact.expires_at(),
            annotation=stored_annotation,
        )
        offset, length = self._spill.append(encode_entry(entry))
        self._bytes_spilled += length
        entry_id = self._next_id
        self._next_id += 1
        self._slots[entry_id] = (key, entry.timestamp, offset, length)
        self._by_key.setdefault(key, []).append(entry_id)
        self._cache_entry(key, entry_id, entry)
        return entry_id

    # -- hot tier ---------------------------------------------------------------

    def _cache_entry(self, key: FactKey, entry_id: int, entry: ProvenanceEntry) -> None:
        group = self._hot.get(key)
        if group is None:
            # Only cache the group when it is complete (this is its first
            # entry, or the whole group was just fetched); a partial group
            # would turn later hits into silent truncations.
            if len(self._by_key[key]) > 1:
                return
            group = self._hot[key] = {}
        group[entry_id] = entry
        self._hot.move_to_end(key)
        self._hot_count += 1
        self._evict()

    def _cache_group(self, key: FactKey, group: Dict[int, ProvenanceEntry]) -> None:
        old = self._hot.pop(key, None)
        if old is not None:
            self._hot_count -= len(old)
        self._hot[key] = group
        self._hot_count += len(group)
        self._evict()

    def _evict(self) -> None:
        while self._hot_count > self.hot_entries and self._hot:
            _key, group = self._hot.popitem(last=False)
            self._hot_count -= len(group)

    def drop_cache(self) -> None:
        """Crash semantics: the volatile hot tier is lost, the log survives.

        The in-memory index is kept — it mirrors the log's live set exactly
        and a real implementation would checkpoint it alongside the log —
        so every archived derivation stays answerable after the crash.
        """
        self._hot.clear()
        self._hot_count = 0

    # -- pins -------------------------------------------------------------------

    def pin(self, index: int) -> None:
        """Mark an entry to persist through aging (anomaly evidence)."""
        if index in self._slots:
            self._pinned.add(index)

    def pin_key(self, key: FactKey) -> None:
        """Protect *key*'s entries from ``age_out`` while a query is in flight."""
        self._query_pins[key] = self._query_pins.get(key, 0) + 1

    def release_key(self, key: FactKey) -> None:
        count = self._query_pins.get(key, 0) - 1
        if count > 0:
            self._query_pins[key] = count
        else:
            self._query_pins.pop(key, None)

    # -- queries ----------------------------------------------------------------

    def is_base(self, key: FactKey) -> bool:
        return key in self._base

    def origin_of(self, key: FactKey) -> Optional[str]:
        """The node holding *key*'s provenance, when it arrived from elsewhere."""
        return self._remote_origin.get(key)

    def knows(self, key: FactKey) -> bool:
        """True when the archive recorded *key* as base or as a derivation."""
        return key in self._base or key in self._by_key

    def annotation_of(self, key: FactKey) -> Optional[CondensedProvenance]:
        """The merged condensed annotation archived for *key* (or None)."""
        return self._condensed.get(key)

    def _fetch(self, entry_id: int) -> ProvenanceEntry:
        """Read one entry back from the spill log (counted as a spill read)."""
        key, _timestamp, offset, length = self._slots[entry_id]
        self._spill_reads += 1
        return decode_entry(
            self._spill.read(offset, length),
            intern_annotation=self._intern_annotation,
        )

    def entries(self, key: Optional[FactKey] = None) -> Tuple[ProvenanceEntry, ...]:
        if key is None:
            return self._scan(list(self._slots))
        ids = self._by_key.get(key)
        if not ids:
            return ()
        group = self._hot.get(key)
        if group is not None and len(group) == len(ids):
            self._hot.move_to_end(key)
            return tuple(group[i] for i in ids)
        fetched: Dict[int, ProvenanceEntry] = {}
        for entry_id in ids:
            if group is not None and entry_id in group:
                fetched[entry_id] = group[entry_id]
            else:
                fetched[entry_id] = self._fetch(entry_id)
        self._cache_group(key, fetched)
        return tuple(fetched[i] for i in ids)

    def _scan(self, ids: List[int]) -> Tuple[ProvenanceEntry, ...]:
        """Fetch *ids* in order without populating the hot tier.

        Full scans (``entries()`` with no key, ``entries_between``) are
        forensic sweeps, not per-key lookups — letting them thrash the LRU
        would make the cache useless right when it matters.
        """
        result: List[ProvenanceEntry] = []
        for entry_id in ids:
            key = self._slots[entry_id][0]
            group = self._hot.get(key)
            if group is not None and entry_id in group:
                result.append(group[entry_id])
            else:
                result.append(self._fetch(entry_id))
        return tuple(result)

    def entries_between(self, start: float, end: float) -> Tuple[ProvenanceEntry, ...]:
        """Entries recorded in the time window [start, end] (forensic queries)."""
        matching = [
            entry_id
            for entry_id, slot in self._slots.items()
            if start <= slot[1] <= end
        ]
        return self._scan(matching)

    def __len__(self) -> int:
        return len(self._slots)

    # -- storage accounting ------------------------------------------------------

    def resident_bytes(self) -> int:
        """Bytes of entry payload held in memory: the hot tier plus the
        interned annotation table (shared, bounded by distinct expressions)."""
        total = 0
        for group in self._hot.values():
            for entry in group.values():
                # The annotation is shared through the intern table and
                # counted once there, not per cached entry.
                total += entry_bytes(entry, include_annotation=False)
        for annotation in self._intern.values():
            total += annotation.serialized_size()
        return total

    def spilled_bytes(self) -> int:
        """Cumulative bytes appended to the spill log."""
        return self._bytes_spilled

    def spill_read_count(self) -> int:
        """Entries fetched back from the spill log to answer queries."""
        return self._spill_reads

    def storage_bytes(self) -> int:
        """Approximate in-memory footprint: resident payload plus the
        per-key index and origin/base metadata (the spill log is on disk)."""
        total = self.resident_bytes()
        for key, ids in self._by_key.items():
            total += len(str(key)) + 8 * len(ids)
        total += 24 * len(self._slots)  # timestamp + offset + length per slot
        for key in self._base:
            total += len(str(key))
        for key, origin in self._remote_origin.items():
            total += len(str(key)) + len(origin)
        return total

    # -- aging -------------------------------------------------------------------

    def age_out(self, now: float) -> int:
        """Drop unpinned entries older than the retention horizon.

        Entries that are pinned — explicitly via :meth:`pin`, or via a
        :meth:`pin_key` reference from an in-flight offline query — are
        kept.  Dropped entries leave the index and the hot tier; their log
        records become unreachable (the log itself is append-only).
        Returns the number of entries dropped.
        """
        if self.retention is None:
            return 0
        dropped = 0
        for entry_id in list(self._slots):
            key, timestamp, _offset, _length = self._slots[entry_id]
            if entry_id in self._pinned or key in self._query_pins:
                continue
            if now - timestamp > self.retention:
                dropped += 1
                del self._slots[entry_id]
                ids = self._by_key[key]
                ids.remove(entry_id)
                if not ids:
                    del self._by_key[key]
                group = self._hot.get(key)
                if group is not None and entry_id in group:
                    del group[entry_id]
                    self._hot_count -= 1
                    if not group:
                        del self._hot[key]
        return dropped

    # -- reconstruction ------------------------------------------------------------

    def reconstruct_graph(self, root: FactKey) -> DerivationGraph:
        """Rebuild the derivation graph of *root* from archived entries.

        Reads through the tiers: hot groups answer from memory, everything
        else comes back from the spill log (and is cached — forensic
        tracebacks are exactly the access pattern the LRU serves).
        """
        graph = DerivationGraph()
        seen: Set[FactKey] = set()
        stack = [root]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            for entry in self.entries(key):
                graph.add_derivation(
                    output=Fact(relation=key[0], values=key[1]),
                    rule_label=entry.rule_label,
                    antecedents=[
                        Fact(relation=k[0], values=k[1])
                        for k in entry.antecedent_keys
                    ],
                    location=entry.node,
                    timestamp=entry.timestamp,
                )
                stack.extend(entry.antecedent_keys)
        return graph
