"""Network provenance: the paper's core contribution.

This package implements the full taxonomy of Section 4:

* **provenance semirings** (:mod:`semiring`, :mod:`polynomial`) — derivations
  are annotated with polynomial expressions over base-tuple / principal
  variables, following Green et al.;
* **condensed provenance** (:mod:`bdd`, :mod:`condensed`) — polynomials are
  canonicalised through reduced ordered BDDs and minimised by absorption
  (``a + a*b -> a``), Section 4.4;
* **derivation graphs** (:mod:`graph`) — the explicit derivation trees of
  Figures 1 and 2, annotated with locations, rules, timestamps and ``says``
  principals;
* **local vs distributed provenance** (:mod:`local`, :mod:`distributed`) —
  piggy-backed full provenance versus per-node pointers reconstructed by a
  recursive traceback query, Section 4.1;
* **online vs offline provenance** (:mod:`store`) — provenance tied to live
  soft state versus an append-only archive that survives expiry, Section 4.2;
* **authenticated provenance** (:mod:`authenticated`) — per-derivation-node
  signatures, Section 4.3;
* **quantifiable provenance** (:mod:`quantify`) — trust levels, counts and
  votes evaluated over provenance expressions, Section 4.5;
* **optimizations** (:mod:`pruning`) — proactive vs reactive maintenance,
  sampling, and AS-granularity aggregation, Section 5.
"""

from repro.provenance.semiring import (
    BOOLEAN,
    COUNTING,
    TRUST,
    Semiring,
    TrustSemiring,
)
from repro.provenance.polynomial import (
    ProvenanceExpression,
    p_one,
    p_product,
    p_sum,
    p_var,
    p_zero,
)
from repro.provenance.bdd import BDD, BDDManager
from repro.provenance.condensed import CondensedProvenance, condense_expression
from repro.provenance.graph import DerivationGraph, DerivationNode, OperatorNode
from repro.provenance.local import LocalProvenanceStore
from repro.provenance.distributed import (
    DistributedProvenanceStore,
    ProvenancePointer,
    TracebackResult,
)
from repro.provenance.store import OfflineProvenanceArchive, OnlineProvenanceStore
from repro.provenance.authenticated import (
    AuthenticatedProvenance,
    ProvenanceVerificationError,
    SignedAnnotation,
    sign_annotation,
    verify_annotation,
)
from repro.provenance.quantify import (
    count_derivations,
    trust_level,
    vote_principals,
)
from repro.provenance.taxonomy import ProvenanceAxes, UseCase, recommend_provenance
from repro.provenance.pruning import (
    ASAggregator,
    MaintenanceMode,
    ProvenanceSampler,
)

__all__ = [
    "ASAggregator",
    "AuthenticatedProvenance",
    "BDD",
    "BDDManager",
    "BOOLEAN",
    "COUNTING",
    "CondensedProvenance",
    "DerivationGraph",
    "DerivationNode",
    "DistributedProvenanceStore",
    "LocalProvenanceStore",
    "MaintenanceMode",
    "OfflineProvenanceArchive",
    "OnlineProvenanceStore",
    "OperatorNode",
    "ProvenanceAxes",
    "ProvenanceExpression",
    "ProvenancePointer",
    "ProvenanceSampler",
    "ProvenanceVerificationError",
    "Semiring",
    "SignedAnnotation",
    "sign_annotation",
    "verify_annotation",
    "TRUST",
    "TracebackResult",
    "TrustSemiring",
    "UseCase",
    "condense_expression",
    "count_derivations",
    "p_one",
    "p_product",
    "p_sum",
    "p_var",
    "p_zero",
    "recommend_provenance",
    "trust_level",
    "vote_principals",
]
