"""The query service plane: an always-on network under provenance query load.

The maintenance plane (``repro.net``) keeps provenance current while the
network converges, churns and refreshes; this package adds the *serving*
side — sustained provenance query traffic treated as first-class
simulation load:

* :mod:`repro.service.workload` — open-loop (Poisson, precomputed
  schedule) and closed-loop (N clients with think time) query arrival
  generation, deterministic and backend-identical;
* :mod:`repro.service.ratelimit` — per-node token-bucket admission
  control on simulated time, with drop/retry policies;
* :mod:`repro.service.cache` — per-node memoized closure cache,
  epoch-/TTL-invalidated so cached answers are never stale;
* :mod:`repro.service.slo` — p50/p95/p99 latency, goodput and rejection
  reporting derived purely from integer counters.

Entry points: ``Network.serve(workload=...)`` at the API layer, or
``NetOptions(admission_rate=..., query_cache=True)`` to arm admission and
caching for any run.
"""

from repro.service.cache import CacheConfig, ClosureCache
from repro.service.ratelimit import ADMISSION_POLICIES, AdmissionControl, TokenBucket
from repro.service.slo import (
    PERCENTILES,
    ServiceLevelReport,
    percentiles_ms,
    service_report,
)
from repro.service.workload import QueryWorkload, next_arrival

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionControl",
    "CacheConfig",
    "ClosureCache",
    "PERCENTILES",
    "QueryWorkload",
    "ServiceLevelReport",
    "TokenBucket",
    "next_arrival",
    "percentiles_ms",
    "service_report",
]
