"""Per-node admission control for the query service plane.

A production provenance service cannot let query traffic starve the
maintenance plane it shares links and CPUs with, so every node fronts its
query handler with a classic token bucket.  The bucket runs on **simulated
time only** (INV001: the service plane never reads the wall clock) and
keeps all of its state on the instance (INV006: no module-level caches),
so two backends replaying the same arrival stream make identical
admit/deny decisions.

Denied arrivals are counted as ``queries_rejected`` on the node's
:class:`~repro.net.stats.NodeStats`; the :class:`AdmissionControl` policy
decides what happens next — ``"drop"`` abandons the arrival immediately
(counted ``queries_shed``), ``"retry"`` re-schedules it up to ``retries``
times after ``retry_delay`` simulated seconds before shedding it.
"""

from __future__ import annotations

from dataclasses import dataclass

ADMISSION_POLICIES = ("drop", "retry")


class TokenBucket:
    """A token bucket advanced lazily by the simulated clock.

    ``rate`` tokens accrue per simulated second up to ``burst``; each
    admitted query spends one.  Refill happens on :meth:`try_acquire`
    from the elapsed simulated time, so the bucket needs no timer events
    of its own and is exact at any event granularity.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        if burst <= 0:
            raise ValueError("token bucket burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = float(start)

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        """Spend *cost* tokens at simulated instant *now* if available."""
        if now > self.updated:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated) * self.rate
            )
            self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def available(self, now: float) -> float:
        """Tokens that would be available at *now*, without spending any."""
        if now <= self.updated:
            return self.tokens
        return min(self.burst, self.tokens + (now - self.updated) * self.rate)


@dataclass(frozen=True)
class AdmissionControl:
    """Validated admission-control configuration, one bucket per node.

    Frozen and picklable: it crosses the sharded backend's spawn boundary
    inside a :class:`~repro.net.sharding.ShardSpec`.
    """

    rate: float
    burst: float = 0.0
    policy: str = "drop"
    retries: int = 3
    retry_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("admission rate must be positive queries/second")
        if self.burst < 0:
            raise ValueError("admission burst must be non-negative")
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; expected one of "
                f"{ADMISSION_POLICIES}"
            )
        if self.retries < 0:
            raise ValueError("admission retries must be non-negative")
        if self.retry_delay <= 0:
            raise ValueError("admission retry_delay must be positive seconds")

    def bucket(self, start: float = 0.0) -> TokenBucket:
        """A fresh per-node bucket; burst defaults to one second of rate."""
        burst = self.burst if self.burst > 0 else max(1.0, self.rate)
        return TokenBucket(rate=self.rate, burst=burst, start=start)
