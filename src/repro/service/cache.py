"""The query-result cache: memoized per-node sub-traceback closures.

Answering a provenance query makes the responding node walk its pointer
store to the *local closure* of the requested key
(:func:`repro.net.query._local_closure`).  Under service load the same
roots are asked again and again — the closure is the natural memo unit,
keyed by ``(root key, query mode, condensed)``.

Correctness is non-negotiable: a cache-served traceback must be
structurally identical to what a cold walk at the same simulated instant
would produce (the Hypothesis property test pins exactly this).  Three
invalidation triggers guarantee it:

* **provenance epoch** — every :class:`~repro.engine.node_engine.NodeEngine`
  bumps an integer epoch whenever any of its provenance stores mutates
  (new derivation, remote record, retraction cascade, soft-state
  re-derivation, crash reset).  An entry recorded under an older epoch is
  discarded at lookup, so the cache can never outlive the store state it
  summarized;
* **TTL** — an optional bound on entry age in simulated seconds, the
  belt-and-suspenders staleness ceiling surfaced by the staleness-age
  histogram;
* **LRU eviction** — the cache is capacity-bounded per node (the same
  discipline INV006 enforces for provenance stores: no unbounded
  process-lifetime state).

All state is per-instance and all decisions depend only on simulated time
and the engine's deterministic epoch, so hit/miss/invalidation counters
are byte-identical between the serial and sharded backends.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Validated, picklable result-cache configuration (crosses spawn)."""

    capacity: int = 256
    #: Maximum entry age in simulated seconds; ``0.0`` disables the bound.
    ttl: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("cache capacity must be a positive entry count")
        if self.ttl < 0:
            raise ValueError("cache ttl must be non-negative simulated seconds")

    def build(self) -> "ClosureCache":
        return ClosureCache(capacity=self.capacity, ttl=self.ttl or None)


class ClosureCache:
    """One node's LRU memo of closure values, epoch- and TTL-guarded."""

    __slots__ = ("capacity", "ttl", "_entries")

    def __init__(self, capacity: int = 256, ttl: Optional[float] = None) -> None:
        self.capacity = capacity
        self.ttl = ttl
        #: key -> (value, epoch, recorded_at); ordered oldest-touch first.
        self._entries: "OrderedDict[Hashable, Tuple[object, int, float]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, key: Hashable, epoch: int, now: float
    ) -> Tuple[Optional[Tuple[object, float]], bool]:
        """Return ``((value, age), invalidated)`` for *key* at *now*.

        A hit returns the memoized value with its age (simulated seconds
        since it was recorded) and refreshes its LRU position.  A stale
        entry — the engine's provenance epoch moved past it, or its TTL
        elapsed — is discarded, reported through the second element so the
        caller can count a ``cache_invalidation``; the lookup itself is
        then a miss.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None, False
        value, recorded_epoch, recorded_at = entry
        age = now - recorded_at
        if recorded_epoch != epoch or (self.ttl is not None and age > self.ttl):
            del self._entries[key]
            return None, True
        self._entries.move_to_end(key)
        return (value, age), False

    def store(self, key: Hashable, value: object, epoch: int, now: float) -> int:
        """Memoize *value*; returns the number of entries LRU-evicted."""
        self._entries[key] = (value, epoch, now)
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            evicted += 1
        return evicted

    def clear(self) -> int:
        """Drop every entry (node crash); returns the count discarded."""
        count = len(self._entries)
        self._entries.clear()
        return count
