"""Query workload generation: open- and closed-loop arrival processes.

The generator turns a :class:`QueryWorkload` description into a stream of
:class:`~repro.net.events.QueryArrival` simulation events that interleave
with whatever else the network is doing (refresh rounds, churn, scenario
dynamics) on the same :class:`~repro.net.events.EventScheduler`.

**Open loop** (``rate > 0``): arrivals are a Poisson process — seeded
exponential inter-arrival draws — whose entire schedule is precomputed
before the run.  Clients do not wait for answers, which is what produces
the saturation signature (latency and rejections climb while goodput
plateaus) instead of the self-throttling a closed loop exhibits.  Because
the schedule is a pure function of the seed and the topology's node list,
the serial and sharded backends see byte-identical event streams.

**Closed loop** (``clients > 0``): N concurrent clients, each pinned to
one node, issue a query, wait for its completion, think for
``think_time`` simulated seconds, and issue the next.  Follow-up arrivals
are scheduled *kernel-side* at completion time (the asker's kernel owns
the client), so the loop needs no coordinator involvement and behaves
identically in ``shard_mode="processes"``.

Arrivals carry a root *selector* — ``(relation, draw, pool)`` — resolved
against the asker's live store when the event fires; drawing from a small
``pool`` of per-node root indices is what makes the workload
repeated-key, the regime where the result cache earns its keep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.net.address import Address
from repro.net.events import QueryArrival
from repro.net.query import QUERY_MODES


def _mix(value: int) -> int:
    """A deterministic 64-bit integer mix (splitmix64 finalizer).

    Used to derive a closed-loop client's next root draw from its arrival
    counter without threading an RNG through kernel state.
    """
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def next_arrival(event: QueryArrival, at: float) -> QueryArrival:
    """The closed-loop follow-up to *event*, issued at simulated *at*.

    Pure and content-derived: the next draw mixes the client's arrival
    counter, so any kernel (or the serial backend) computing the follow-up
    produces the identical event — including its content-based rank.
    """
    arrival_id = event.arrival_id + 1
    return QueryArrival(
        time=at,
        address=event.address,
        relation=event.relation,
        draw=_mix((event.client << 32) | arrival_id) % event.pool,
        pool=event.pool,
        mode=event.mode,
        condensed=event.condensed,
        client=event.client,
        arrival_id=arrival_id,
        attempt=0,
        deadline=event.deadline,
        think=event.think,
    )


@dataclass(frozen=True)
class QueryWorkload:
    """A declarative description of one serve window's query load.

    ``rate`` is the aggregate open-loop arrival rate in queries per
    simulated second (0 disables the open loop); ``clients`` the number of
    closed-loop clients (0 disables the closed loop); both can run at
    once.  ``pool`` bounds the distinct per-node root indices drawn —
    small pools mean repeated keys and cache hits.
    """

    rate: float = 0.0
    clients: int = 0
    think_time: float = 0.5
    duration: float = 10.0
    seed: int = 0
    relation: str = "bestPath"
    pool: int = 4
    mode: str = "online"
    condensed: bool = False

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("workload rate must be non-negative queries/second")
        if self.clients < 0:
            raise ValueError("workload clients must be non-negative")
        if self.rate == 0 and self.clients == 0:
            raise ValueError(
                "workload needs an open loop (rate > 0), a closed loop "
                "(clients > 0), or both"
            )
        if self.think_time < 0:
            raise ValueError("workload think_time must be non-negative seconds")
        if self.duration <= 0:
            raise ValueError("workload duration must be positive seconds")
        if self.pool <= 0:
            raise ValueError("workload pool must be a positive root count")
        if self.mode not in QUERY_MODES:
            raise ValueError(
                f"unknown workload query mode {self.mode!r}; expected one of "
                f"{QUERY_MODES}"
            )

    def events(
        self, nodes: Sequence[Address], start: float
    ) -> List[QueryArrival]:
        """The precomputed arrival events for a serve window opening at *start*.

        Open-loop arrivals are drawn here in full; closed-loop clients get
        their first arrival each (staggered across the first think window)
        and self-perpetuate kernel-side via :func:`next_arrival` until
        ``deadline``.  The result is a pure function of ``(self, nodes,
        start)`` — both backends schedule the identical stream.
        """
        ordered = sorted(nodes, key=str)
        if not ordered:
            raise ValueError("workload needs at least one node to aim at")
        rng = random.Random(self.seed)
        deadline = start + self.duration
        arrivals: List[QueryArrival] = []
        if self.rate > 0:
            arrival_id = 0
            at = start
            while True:
                at += rng.expovariate(self.rate)
                if at >= deadline:
                    break
                arrivals.append(
                    QueryArrival(
                        time=at,
                        address=ordered[rng.randrange(len(ordered))],
                        relation=self.relation,
                        draw=rng.randrange(self.pool),
                        pool=self.pool,
                        mode=self.mode,
                        condensed=self.condensed,
                        client=-1,
                        arrival_id=arrival_id,
                        attempt=0,
                        deadline=deadline,
                        think=0.0,
                    )
                )
                arrival_id += 1
        think = self.think_time
        for client in range(self.clients):
            stagger = rng.uniform(0.0, think) if think > 0 else 0.0
            arrivals.append(
                QueryArrival(
                    time=start + stagger,
                    address=ordered[client % len(ordered)],
                    relation=self.relation,
                    draw=rng.randrange(self.pool),
                    pool=self.pool,
                    mode=self.mode,
                    condensed=self.condensed,
                    client=client,
                    arrival_id=0,
                    attempt=0,
                    deadline=deadline,
                    think=think,
                )
            )
        return arrivals

    def offered(self, events: Iterable[QueryArrival]) -> int:
        """Initial arrivals offered (closed-loop follow-ups not included)."""
        return sum(1 for _ in events)
