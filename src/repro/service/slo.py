"""Latency SLO accounting: percentiles, goodput and saturation curves.

The service plane's contract with its operators is a service-level
objective over *simulated* time: p50/p95/p99 query latency, completed
queries per simulated second (goodput), and how both move as the offered
rate crosses the saturation point.  The recorded statistic is always the
integer latency-bucket histogram on :class:`~repro.net.stats.NodeStats`
(byte-identical across backends); everything here is *derived* — a pure
function of those integers — so serial and sharded runs report exactly
the same SLO numbers.

Open-loop saturation has a characteristic signature the benchmark axis
(``benchmarks/test_query_service.py``) asserts: past the admission /
capacity knee, p95 latency and the rejection rate rise monotonically with
the offered rate while goodput plateaus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.net.stats import NetworkStats, bucket_percentile

PERCENTILES = (0.50, 0.95, 0.99)


@dataclass(frozen=True)
class ServiceLevelReport:
    """One serve window's SLO numbers, derived from integer counters."""

    #: Arrivals the workload generator offered, and per simulated second.
    offered: int
    offered_rate: float
    #: Queries that ran to completion, and per simulated second (goodput).
    completed: int
    goodput: float
    rejected: int
    shed: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    cache_hits: int
    cache_misses: int
    cache_invalidations: int
    duration: float
    #: Staleness-age spread of the answers served from the result cache:
    #: p50/p95/p99 of the age (milliseconds of simulated time since the
    #: entry was stored) at hit time.  Epoch guards make a hit
    #: structurally identical to a cold walk, so this measures how *old*
    #: correct answers are, not how wrong they could be; all zeros when
    #: the cache is cold or disarmed.
    staleness_p50_ms: float = 0.0
    staleness_p95_ms: float = 0.0
    staleness_p99_ms: float = 0.0

    @property
    def rejection_rate(self) -> float:
        """Denials per offered arrival (retries can push this above 1.0)."""
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "offered": float(self.offered),
            "offered_rate": self.offered_rate,
            "completed": float(self.completed),
            "goodput_qps": self.goodput,
            "rejected": float(self.rejected),
            "shed": float(self.shed),
            "rejection_rate": self.rejection_rate,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_invalidations": float(self.cache_invalidations),
            "cache_hit_ratio": self.cache_hit_ratio,
            "duration_s": self.duration,
            "staleness_p50_ms": self.staleness_p50_ms,
            "staleness_p95_ms": self.staleness_p95_ms,
            "staleness_p99_ms": self.staleness_p99_ms,
        }


def percentiles_ms(histogram: Mapping[int, int]) -> Dict[float, float]:
    """p50/p95/p99 (milliseconds) of one latency-bucket histogram."""
    return {
        fraction: bucket_percentile(dict(histogram), fraction)
        for fraction in PERCENTILES
    }


def service_report(
    stats: NetworkStats, duration: float, offered: int
) -> ServiceLevelReport:
    """Assemble the SLO report for one serve window.

    *duration* is the window's simulated length and *offered* the number
    of arrivals the workload generator scheduled into it; both come from
    the caller because :class:`NetworkStats` spans the whole run,
    convergence included.
    """
    histogram = stats.query_latency_histogram()
    spread = percentiles_ms(histogram)
    staleness = percentiles_ms(stats.cache_staleness_histogram())
    completed = stats.total_queries_completed()
    return ServiceLevelReport(
        offered=offered,
        offered_rate=offered / duration if duration > 0 else 0.0,
        completed=completed,
        goodput=completed / duration if duration > 0 else 0.0,
        rejected=stats.total_queries_rejected(),
        shed=stats.total_queries_shed(),
        p50_ms=spread[0.50],
        p95_ms=spread[0.95],
        p99_ms=spread[0.99],
        cache_hits=stats.total_cache_hits(),
        cache_misses=stats.total_cache_misses(),
        cache_invalidations=stats.total_cache_invalidations(),
        duration=duration,
        staleness_p50_ms=staleness[0.50],
        staleness_p95_ms=staleness[0.95],
        staleness_p99_ms=staleness[0.99],
    )
