"""Node addresses.

Addresses are plain strings (``"n3"`` or ``"10.0.0.3:5000"``); this module
centralises how they are generated so topologies, engines and provenance all
agree on naming.
"""

from __future__ import annotations

from typing import Tuple

Address = str


def node_name(index: int, prefix: str = "n") -> Address:
    """Canonical address of the *index*-th node (``n0``, ``n1``, ...)."""
    if index < 0:
        raise ValueError("node index must be non-negative")
    return f"{prefix}{index}"


def node_names(count: int, prefix: str = "n") -> Tuple[Address, ...]:
    """Addresses of the first *count* nodes."""
    return tuple(node_name(i, prefix) for i in range(count))
