"""The sharded execution backend: parallel per-shard kernels.

The serial backend replays a distributed system one event at a time; this
module partitions the topology into K shards and runs one
:class:`~repro.net.kernel.SimulationKernel` per shard — in worker processes
(``multiprocessing``, spawn-safe) or in-process for debugging — while
keeping the simulation *exactly* equivalent to the serial schedule:

* **Partitioning** (:func:`partition_topology`) is a deterministic, seeded
  edge-cut heuristic: K spread-out seed nodes grow balanced regions
  greedily, always absorbing the unassigned neighbour with the most links
  into the region, so most traffic stays shard-local.

* **Synchronization** is conservative (null-message-free Chandy–Misra in
  spirit): all cross-shard traffic pays at least the minimum cross-shard
  link propagation latency ``W``.  The strict barrier
  (``shard_pipeline=False``) steps every shard through lockstep windows
  ``[T, T + W)``, exchanging exported ``MessageDelivery`` events at each
  barrier.  The **pipelined coordinator** (``shard_pipeline=True``) drops
  the lockstep: each shard gets its own grant ``[*, H_S)`` where ``H_S`` is
  the minimum *floor* of every other shard (a shard working on a grant
  based at ``T`` cannot emit anything delivering before ``T + W``), so a
  shard whose peers are ahead — or idle — runs many window-widths in one
  round-trip (window coalescing), and shards compute concurrently while the
  coordinator routes earlier replies (pipelined barriers).  Soundness rests
  on a conservative check in the worker: a granted window's effective
  horizon tightens to ``min(H_S, d + W)`` as it exports deliveries due at
  ``d`` (:meth:`SimulationKernel.run_window`'s *lookahead*), falling back
  to strict-barrier pacing exactly when cross-shard feedback could matter,
  so results stay byte-identical.

* **Transport**: coordinator↔worker traffic travels as compact binary
  frames (:mod:`repro.net.transport`) over the persistent pipes — interned
  addresses/relations, struct-packed headers, ``repr``-literal payloads —
  instead of per-window pickles; ``transport="shm"`` adds a zero-copy
  shared-memory ring per pipe direction for large frames, and
  ``transport="pickle"`` keeps the legacy encoding as a measurable
  baseline.  The coordination ledger — ``coordination_rounds``,
  ``coordination_bytes``, ``windows_executed``, ``windows_coalesced`` — is
  deterministic (inline and process runs agree exactly) and flows through
  :meth:`NetworkStats.summary`.

* **Determinism / serial equivalence**: event tie-breaking is content-based
  (see :mod:`repro.net.events`) and message sequence numbers are per
  sending *node*, so each shard replays exactly the serial schedule
  restricted to its nodes.  Derived facts, delivery sequence numbers and
  every integer/byte statistic are identical to ``backend="serial"``;
  floating-point aggregates agree up to summation order (per-node floats
  are bit-identical; only cross-node sums may associate differently), the
  same contract ``batch_receive`` established.

* **Dynamics**: control events (link failure/recovery, node crash/recovery,
  soft-state refresh) broadcast to every kernel — each updates its replica
  of the down-link/down-node sets, while only the shard hosting the
  affected node performs retraction cascades, engine resets and
  re-injection, and counts the event, keeping merged event totals equal to
  the serial backend's.

The public entry point is ``repro.api``::

    network = Network.build(topology=200, program="best-path",
                            provenance="ndlog", backend="sharded", shards=4,
                            shard_pipeline=True)
    result = network.run()   # same facts and integer stats as serial
    result.stats.summary()["coordination_rounds"]
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
import random
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.datalog.ast import Program
from repro.datalog.catalog import Catalog
from repro.datalog.planner import CompiledProgram, compile_program
from repro.engine.node_engine import EngineConfig, NodeEngine
from repro.engine.tuples import Fact, as_fact_key
from repro.net.address import Address
from repro.net.events import (
    FactInjection,
    FactRetraction,
    LinkDown,
    LinkUp,
    MessageDelivery,
    NodeCrash,
    NodeRecover,
    QueryArrival,
    RefreshHorizon,
    SimulationEvent,
)
from repro.net.kernel import (
    CostModel,
    SimulationKernel,
    SimulationResult,
    shape_link_facts,
)
from repro.net.link import DEFAULT_BANDWIDTH, DEFAULT_LATENCY
from repro.net.query import (
    DEFAULT_QUERY_TIMEOUT,
    PendingQuery,
    ProvenanceQuery,
    QueryResult,
)
from repro.net.stats import NetworkStats, WireMessage
from repro.net.topology import Topology
from repro.net.transport import (
    SHM_MIN_FRAME_BYTES,
    TRANSPORTS,
    SharedMemoryRing,
    make_codec,
)
from repro.service.cache import CacheConfig
from repro.service.ratelimit import AdmissionControl
from repro.service.workload import QueryWorkload

#: Execution modes for the shard workers.
SHARD_MODES = ("processes", "inline")


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of one topology into K shards."""

    shards: Tuple[Tuple[Address, ...], ...]
    assignment: Dict[Address, int] = field(hash=False, compare=False)
    #: Directed links whose endpoints live on different shards.
    cut_links: Tuple[Tuple[Address, Address], ...] = ()
    #: Conservative lookahead window: the minimum propagation latency of any
    #: cut link (infinite when nothing crosses — one shard, or a degenerate
    #: partition).
    window: float = math.inf

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, address: Address, default: int = 0) -> int:
        return self.assignment.get(address, default)


def partition_topology(
    topology: Topology, shards: int, seed: int = 0
) -> ShardPlan:
    """Split *topology* into *shards* balanced node groups with few cut edges.

    Deterministic in *seed*: K seed nodes are chosen by a farthest-point
    sweep from a seeded random start, then regions grow breadth-first one
    node at a time — always the smallest region first, absorbing the next
    unassigned node on its BFS frontier (discovery order; topology order
    within one hop) and falling back to the first unassigned node when a
    frontier empties (disconnected leftovers).  Multi-seed BFS growth keeps
    regions contiguous and balanced — the classic cheap edge-cut heuristic —
    with no external graph library and reproducible results everywhere.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    nodes = list(topology.nodes)
    shards = min(shards, len(nodes))
    order = {node: position for position, node in enumerate(nodes)}
    neighbours: Dict[Address, Set[Address]] = {node: set() for node in nodes}
    for link in topology.links:
        neighbours[link.source].add(link.destination)
        neighbours[link.destination].add(link.source)

    def hops_from(start: Address) -> Dict[Address, int]:
        distance = {start: 0}
        frontier = [start]
        while frontier:
            next_frontier: List[Address] = []
            for node in frontier:
                for peer in neighbours[node]:
                    if peer not in distance:
                        distance[peer] = distance[node] + 1
                        next_frontier.append(peer)
            frontier = next_frontier
        return distance

    rng = random.Random(seed)
    seeds = [nodes[rng.randrange(len(nodes))]]
    while len(seeds) < shards:
        # Farthest-point spread: the node maximising its distance to the
        # nearest existing seed (unreachable nodes count as infinitely far).
        best: Optional[Address] = None
        best_rank: Tuple[float, int] = (-1.0, 0)
        distances = [hops_from(existing) for existing in seeds]
        for node in nodes:
            if node in seeds:
                continue
            nearest = min(d.get(node, math.inf) for d in distances)
            rank = (nearest, -order[node])
            if rank > best_rank:
                best, best_rank = node, rank
        assert best is not None
        seeds.append(best)

    assignment: Dict[Address, int] = {}
    members: List[List[Address]] = [[] for _ in range(shards)]
    frontiers: List[List[Address]] = [[] for _ in range(shards)]

    def sorted_neighbours(node: Address) -> List[Address]:
        return sorted(neighbours[node], key=lambda peer: order[peer])

    def assign(node: Address, shard: int) -> None:
        assignment[node] = shard
        members[shard].append(node)
        frontiers[shard].extend(sorted_neighbours(node))

    for shard, node in enumerate(seeds):
        assign(node, shard)
    remaining = len(nodes) - len(seeds)
    cursor = 0  # topology-order fallback for disconnected leftovers
    while remaining:
        shard = min(range(shards), key=lambda s: (len(members[s]), s))
        frontier = frontiers[shard]
        chosen: Optional[Address] = None
        while frontier:
            candidate = frontier.pop(0)
            if candidate not in assignment:
                chosen = candidate
                break
        if chosen is None:
            while nodes[cursor] in assignment:
                cursor += 1
            chosen = nodes[cursor]
        assign(chosen, shard)
        remaining -= 1

    cut = tuple(
        (link.source, link.destination)
        for link in topology.links
        if assignment[link.source] != assignment[link.destination]
    )
    window = math.inf
    for source, destination in cut:
        link = topology.link_between(source, destination)
        if link is not None:
            window = min(window, link.latency)
    if cut and window <= 0:
        raise ValueError(
            "the sharded backend needs positive propagation latency on "
            "every cross-shard link: the conservative lookahead window is "
            "their minimum latency, and a zero window cannot make progress"
        )
    return ShardPlan(
        shards=tuple(tuple(group) for group in members),
        assignment=assignment,
        cut_links=cut,
        window=window,
    )


# ---------------------------------------------------------------------------
# Worker protocol: framed ops over pipes (or shared-memory rings)
# ---------------------------------------------------------------------------

_OP_FLUSH = 1
_OP_WINDOW = 2
_OP_STATS = 3
_OP_COUNT = 4
_OP_EXPIRE = 5
_OP_FINALIZE = 6
_OP_SETTLE = 7

_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")
#: Pipe control message pointing into a shared-memory ring: flag, offset, length.
_SHM_DESCRIPTOR = struct.Struct("<BQI")


def _pack_optional_f64(value: Optional[float]) -> bytes:
    return b"\x00" if value is None else b"\x01" + _F64.pack(value)


def _unpack_optional_f64(data: bytes, offset: int) -> Tuple[Optional[float], int]:
    if data[offset]:
        return _F64.unpack_from(data, offset + 1)[0], offset + 9
    return None, offset + 1


def _pack_flush(codec, batch) -> bytes:
    """A drain-prime command: stamped control events (often none).

    An empty flush is a fixed-size frame — one op byte plus the codec's
    empty-batch encoding — and its reply is fixed-size too when the worker
    has nothing pending, so the per-drain prime round stays cheap.
    """
    return bytes((_OP_FLUSH,)) + codec.encode_events(batch)


def _pack_window(
    codec, horizon: float, imports, lookahead: Optional[float]
) -> bytes:
    """A window grant: run to *horizon* (f64, ``inf`` allowed) with *imports*.

    *lookahead* arms the worker's export self-cap (pipelined mode); strict
    barriers omit it.
    """
    return (
        bytes((_OP_WINDOW,))
        + _F64.pack(horizon)
        + _pack_optional_f64(lookahead)
        + codec.encode_exports(imports)
    )


def _unpack_flush_reply(codec, raw: bytes):
    next_time, offset = _unpack_optional_f64(raw, 1)
    processed = _U64.unpack_from(raw, offset)[0]
    return next_time, processed, codec.decode_exports(raw[offset + 8 :])


def _unpack_window_reply(codec, raw: bytes):
    next_time, offset = _unpack_optional_f64(raw, 1)
    last_time, offset = _unpack_optional_f64(raw, offset)
    within_budget = bool(raw[offset])
    processed = _U64.unpack_from(raw, offset + 1)[0]
    exports = codec.decode_exports(raw[offset + 9 :])
    return next_time, last_time, within_budget, processed, exports


def _check_reply(frame: bytes) -> bytes:
    if frame[:1] == b"\x01":
        raise RuntimeError(
            f"shard worker failed: {frame[1:].decode('utf-8', 'replace')}"
        )
    return frame


def _serve_op(kernel: SimulationKernel, codec, frame: bytes) -> bytes:
    """Execute one coordination command against *kernel*; return the reply.

    Shared verbatim by the process worker loop and the inline wrapper, so
    both modes produce byte-identical frames — which is what makes the
    coordination ledger identical across ``shard_mode`` values.
    """
    op = frame[0]
    if op == _OP_FLUSH:
        for event, stamp, owned in codec.decode_events(frame[1:]):
            kernel.schedule_stamped(event, stamp, owned)
        return (
            b"\x00"
            + _pack_optional_f64(kernel.scheduler.peek_time())
            + _U64.pack(kernel._events_processed)
            + codec.encode_exports(kernel.take_exports())
        )
    if op == _OP_WINDOW:
        horizon = _F64.unpack_from(frame, 1)[0]
        lookahead, offset = _unpack_optional_f64(frame, 9)
        imports = codec.decode_exports(frame[offset:])
        exports, next_time, within_budget, last_time = kernel.run_window(
            horizon, imports, lookahead
        )
        return (
            b"\x00"
            + _pack_optional_f64(next_time)
            + _pack_optional_f64(last_time)
            + (b"\x01" if within_budget else b"\x00")
            + _U64.pack(kernel._events_processed)
            + codec.encode_exports(exports)
        )
    if op == _OP_STATS:
        # Storage-tier gauges live in the engines, which never leave the
        # worker mid-run: fold them into the stats snapshot before it
        # crosses the process boundary.  Snapshots are off the hot path, so
        # they stay pickled.
        kernel.refresh_provenance_stats()
        snapshot = (
            kernel.stats,
            kernel.scheduler.events_scheduled,
            kernel._uncounted_scheduled,
            kernel._events_processed,
            kernel.current_time(),
            dict(kernel.query_receipts),
        )
        return b"\x00" + pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
    if op == _OP_COUNT:
        count = kernel.count_facts(pickle.loads(frame[1:]))
        return b"\x00" + pickle.dumps(count, protocol=pickle.HIGHEST_PROTOCOL)
    if op == _OP_EXPIRE:
        kernel.expire_all(_F64.unpack_from(frame, 1)[0])
        return b"\x00"
    if op == _OP_SETTLE:
        kernel.settle_retractions()
        return b"\x00"
    raise ValueError(f"unknown shard worker op {op!r}")


class _FrameChannel:
    """Byte frames over one pipe end, optionally via shared-memory rings.

    Under ``transport="shm"`` frames of at least ``SHM_MIN_FRAME_BYTES``
    are placed in the outbound ring and only a fixed 13-byte descriptor
    crosses the pipe; the request/reply protocol guarantees at most one
    outstanding frame per direction, so ring slots are free for reuse by
    the time the producer wraps.  Smaller frames (and frames larger than
    the whole ring) travel inline down the pipe with a one-byte tag.
    """

    __slots__ = ("connection", "send_ring", "recv_ring")

    def __init__(self, connection, send_ring=None, recv_ring=None) -> None:
        self.connection = connection
        self.send_ring = send_ring
        self.recv_ring = recv_ring

    def send(self, frame: bytes) -> None:
        ring = self.send_ring
        if ring is not None and len(frame) >= SHM_MIN_FRAME_BYTES:
            placed = ring.write(frame)
            if placed is not None:
                self.connection.send_bytes(_SHM_DESCRIPTOR.pack(1, *placed))
                return
        self.connection.send_bytes(b"\x00" + frame)

    def recv(self) -> bytes:
        data = self.connection.recv_bytes()
        if data[0] == 1:
            _, offset, length = _SHM_DESCRIPTOR.unpack(data)
            return self.recv_ring.read(offset, length)
        return data[1:]


# ---------------------------------------------------------------------------
# Shard specs and workers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardSpec:
    """Everything a spawn-safe worker needs to rebuild its shard kernel.

    Carries the *localized program AST* rather than the compiled program:
    compiled plans hold closures that cannot cross a spawn boundary, and
    compilation is deterministic, so every worker (and the coordinator)
    compiles identical plans from the same AST.
    """

    topology: Topology
    program: Program
    config: EngineConfig
    hosted: Tuple[Address, ...]
    primary: bool
    cost_model: Optional[CostModel] = None
    key_bits: int = 256
    max_events: int = 5_000_000
    default_latency: float = DEFAULT_LATENCY
    default_bandwidth: float = DEFAULT_BANDWIDTH
    batching: bool = True
    batch_receive: bool = True
    link_relation: str = "link"
    query_timeout: float = DEFAULT_QUERY_TIMEOUT
    admission: Optional[AdmissionControl] = None
    query_cache: Optional[CacheConfig] = None
    refresh_mode: str = "rounds"
    refresh_interval: float = 10.0
    refresh_rate: float = 0.0
    refresh_burst: float = 1.0

    def build_kernel(self, compiled: Optional[CompiledProgram] = None) -> SimulationKernel:
        return SimulationKernel(
            topology=self.topology,
            compiled=compiled if compiled is not None else compile_program(self.program),
            config=self.config,
            cost_model=self.cost_model,
            key_bits=self.key_bits,
            max_events=self.max_events,
            default_latency=self.default_latency,
            default_bandwidth=self.default_bandwidth,
            batching=self.batching,
            batch_receive=self.batch_receive,
            link_relation=self.link_relation,
            query_timeout=self.query_timeout,
            admission=self.admission,
            query_cache=self.query_cache,
            refresh_mode=self.refresh_mode,
            refresh_interval=self.refresh_interval,
            refresh_rate=self.refresh_rate,
            refresh_burst=self.refresh_burst,
            hosted=self.hosted,
            primary=self.primary,
        )


def _shard_worker_main(
    conn, spec: ShardSpec, transport: str, ring_names
) -> None:
    """Worker entry point: serve framed kernel operations until closed.

    Module-level (importable) and argument-picklable, so it is safe under
    the ``spawn`` start method — the only one available everywhere.
    """
    codec = make_codec(transport)
    send_ring = recv_ring = None
    if ring_names is not None:
        # Mirrored ends: the coordinator's send ring is this side's recv ring.
        recv_ring = SharedMemoryRing(name=ring_names[0])
        send_ring = SharedMemoryRing(name=ring_names[1])
    channel = _FrameChannel(conn, send_ring=send_ring, recv_ring=recv_ring)
    try:
        kernel = spec.build_kernel()
        kernel.enable_exports()
    except BaseException as error:  # pragma: no cover - construction bugs
        channel.send(b"\x01" + f"{type(error).__name__}: {error}".encode())
        return
    while True:
        try:
            frame = channel.recv()
        except EOFError:
            return  # the coordinator is gone; nothing left to serve
        if frame[0] == _OP_FINALIZE:
            channel.send(
                b"\x00" + pickle.dumps(kernel, protocol=pickle.HIGHEST_PROTOCOL)
            )
            conn.close()
            for ring in (send_ring, recv_ring):
                if ring is not None:
                    ring.close()
            return
        try:
            reply = _serve_op(kernel, codec, frame)
        except BaseException as error:
            try:
                channel.send(b"\x01" + f"{type(error).__name__}: {error}".encode())
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            return
        channel.send(reply)


class _WorkerHandle:
    """One spawned shard worker plus its framed request/reply channel."""

    def __init__(self, context, spec: ShardSpec, transport: str) -> None:
        self._send_ring = self._recv_ring = None
        ring_names = None
        if transport == "shm":
            self._send_ring = SharedMemoryRing(create=True)
            self._recv_ring = SharedMemoryRing(create=True)
            ring_names = (self._send_ring.name, self._recv_ring.name)
        self.connection, child = context.Pipe()
        self.process = context.Process(
            target=_shard_worker_main,
            args=(child, spec, transport, ring_names),
            daemon=True,
        )
        self.process.start()
        child.close()
        self.channel = _FrameChannel(
            self.connection, send_ring=self._send_ring, recv_ring=self._recv_ring
        )

    def send_command(self, frame: bytes) -> None:
        self.channel.send(frame)

    def recv_reply(self) -> bytes:
        return _check_reply(self.channel.recv())

    def close(self) -> None:
        try:
            self.connection.close()
        except OSError:  # pragma: no cover
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        for ring in (self._send_ring, self._recv_ring):
            if ring is not None:
                ring.close()


class _InlineWorker:
    """An in-process kernel behind the exact worker frame surface.

    Commands are encoded, decoded and served through the same codec and
    :func:`_serve_op` as a process worker — execution just happens at send
    time, with the reply buffered for the matching ``recv_reply`` — so
    inline runs produce byte-identical frames, and therefore an identical
    coordination ledger, to process runs of the same workload.
    """

    def __init__(self, kernel: SimulationKernel, codec) -> None:
        self.kernel = kernel
        self._codec = codec
        self._replies: deque = deque()

    def send_command(self, frame: bytes) -> None:
        try:
            reply = _serve_op(self.kernel, self._codec, frame)
        except BaseException as error:
            reply = b"\x01" + f"{type(error).__name__}: {error}".encode()
        self._replies.append(reply)

    def recv_reply(self) -> bytes:
        return _check_reply(self._replies.popleft())


class _SchedulerView:
    """The tiny slice of the scheduler surface phase reports consume."""

    def __init__(self, backend: "ShardedSimulator") -> None:
        self._backend = backend

    @property
    def events_scheduled(self) -> int:
        return self._backend.events_scheduled()


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------

class ShardedSimulator:
    """Coordinates K shard kernels behind the serial simulator's surface.

    Presents the same running surface as a
    :class:`~repro.net.kernel.SimulationKernel` hosting all nodes —
    ``schedule`` / ``run_until_idle`` / ``run`` / ``finish`` / ``query`` /
    ``stats`` / ``engines`` — so the :class:`repro.api.Network` facade, the
    harness sweeps and the scenario scripts drive either backend unchanged.

    ``shard_mode="processes"`` (the default) runs each kernel in a spawned
    worker; ``"inline"`` runs them all in-process — same windows, same
    barriers, same results *and the same coordination ledger* — which is
    the debugger-friendly mode and the one that keeps engines inspectable
    mid-run.  ``shard_pipeline=True`` switches the strict lockstep barrier
    for the pipelined per-shard-horizon coordinator (see the module
    docstring); ``transport`` picks the coordination encoding.  After
    ``finish()`` the worker kernels are reeled back in whole (engines,
    provenance stores, dynamic state), so post-run inspection and
    in-network provenance queries work identically in both modes.
    """

    def __init__(
        self,
        topology: Topology,
        compiled: CompiledProgram,
        config: EngineConfig,
        cost_model: Optional[CostModel] = None,
        key_bits: int = 256,
        max_events: int = 5_000_000,
        default_latency: float = DEFAULT_LATENCY,
        default_bandwidth: float = DEFAULT_BANDWIDTH,
        batching: bool = True,
        batch_receive: bool = True,
        link_relation: str = "link",
        query_timeout: float = DEFAULT_QUERY_TIMEOUT,
        admission: Optional[AdmissionControl] = None,
        query_cache: Optional[CacheConfig] = None,
        refresh_mode: str = "rounds",
        refresh_interval: float = 10.0,
        refresh_rate: float = 0.0,
        refresh_burst: float = 1.0,
        shards: int = 2,
        shard_mode: str = "processes",
        shard_seed: int = 0,
        shard_pipeline: bool = False,
        transport: str = "binary",
    ) -> None:
        if shard_mode not in SHARD_MODES:
            raise ValueError(
                f"unknown shard_mode {shard_mode!r}; expected one of {SHARD_MODES}"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        self.topology = topology
        self.compiled = compiled
        self.config = config
        self.cost_model = cost_model
        self.key_bits = key_bits
        self.max_events = max_events
        self.default_latency = default_latency
        self.default_bandwidth = default_bandwidth
        self.batching = batching
        self.batch_receive = batch_receive
        self.link_relation = link_relation
        self.query_timeout = query_timeout
        self.admission = admission
        self.query_cache = query_cache
        self.refresh_mode = refresh_mode
        self.refresh_interval = refresh_interval
        self.refresh_rate = refresh_rate
        self.refresh_burst = refresh_burst
        #: Mirror of the serial kernel's refresh-horizon emission guard: the
        #: furthest instant an externally scheduled event has announced.
        self._refresh_horizon = 0.0
        self.shard_mode = shard_mode
        self.shard_pipeline = shard_pipeline
        self.transport = transport
        self._codec = make_codec(transport)
        self.plan = partition_topology(topology, shards, seed=shard_seed)
        #: The effective conservative lookahead: cross-shard traffic pays at
        #: least the minimum cut-link latency — or ``default_latency`` for
        #: sends between nodes without a directed topology link (Best-Path
        #: advertises upstream along *reverse* links, which take that path).
        self.window = min(self.plan.window, default_latency)
        if self.plan.cut_links and self.window <= 0:
            raise ValueError(
                "the sharded backend needs a positive default_latency: "
                "linkless sends (reverse-link advertisements) bound the "
                "conservative lookahead window"
            )
        self.scheduler = _SchedulerView(self)

        self._catalog = Catalog.from_program(compiled.program)
        self._specs = [
            ShardSpec(
                topology=topology,
                program=compiled.program,
                config=config,
                hosted=group,
                primary=(index == 0),
                cost_model=cost_model,
                key_bits=key_bits,
                max_events=max_events,
                default_latency=default_latency,
                default_bandwidth=default_bandwidth,
                batching=batching,
                batch_receive=batch_receive,
                link_relation=link_relation,
                query_timeout=query_timeout,
                admission=admission,
                query_cache=query_cache,
                refresh_mode=refresh_mode,
                refresh_interval=refresh_interval,
                refresh_rate=refresh_rate,
                refresh_burst=refresh_burst,
            )
            for index, group in enumerate(self.plan.shards)
        ]
        #: In-process kernels (inline mode always; process mode after the
        #: workers were finalized and reeled back in).
        self._kernels: Optional[List[SimulationKernel]] = None
        self._workers: Optional[List[_WorkerHandle]] = None
        #: The uniform command surface the coordination loops drive:
        #: worker handles or inline wrappers, one per shard.
        self._io: Optional[List] = None
        #: Externally scheduled events buffered until the next drain.
        self._pending_external: List[Tuple[SimulationEvent, int]] = []
        #: Per-shard batches built while routing a flush.
        self._flush_buffers: Dict[int, List] = {}
        #: Cross-shard deliveries awaiting import, per destination shard.
        self._pending_imports: List[List[Tuple[float, WireMessage]]] = [
            [] for _ in range(self.plan.shard_count)
        ]
        #: The coordination ledger (see NetworkStats): deterministic counts
        #: of hot-path round-trips, the frame bytes they carried, window
        #: commands issued, and extra window-widths covered by leases.
        self._coordination_rounds = 0
        self._coordination_bytes = 0
        self._windows_executed = 0
        self._windows_coalesced = 0
        #: Per-shard certificate that the coordinator *knows* the shard's
        #: queue is empty and its export sink drained: fresh kernels start
        #: certified, a drain that runs to the distributed fixpoint
        #: re-certifies everyone, and any path that touches a kernel behind
        #: the coordinator's back (query issuance, expiry, finish) revokes
        #: it.  The pipelined drain skips the flush round-trip for certified
        #: shards with nothing buffered; the strict barrier never skips —
        #: it is the measured baseline.
        self._idle_certified = [True] * self.plan.shard_count
        self._shard_processed = [0] * self.plan.shard_count
        self._control_stamp = 0
        self._finished = False
        if shard_mode == "inline":
            self._kernels = [
                spec.build_kernel(compiled=compiled) for spec in self._specs
            ]
            self._wire_kernels()

    def _wire_kernels(self) -> None:
        """Wire in-process kernels into one sharded whole.

        Deliveries to non-hosted destinations accumulate for barrier
        exchange — permanently, covering sends made between drains (a
        query's first cross-shard requests) — and each kernel's query
        engine resolves pending queries by *asker* across kernels, because
        query ids are only unique per kernel.
        """
        assert self._kernels is not None

        def find_pending(asker: Address, query_id: int):
            kernel = self._kernels[self.plan.shard_of(asker)]
            return kernel.queries._queries.get(query_id)

        for kernel in self._kernels:
            kernel.enable_exports()
            kernel.queries.resolve_remote = find_pending

    # -- worker lifecycle --------------------------------------------------------

    def _ensure_running(self) -> None:
        if self._kernels is not None:
            if self._io is None:
                self._io = [
                    _InlineWorker(kernel, self._codec) for kernel in self._kernels
                ]
            return
        if self._workers is None:
            context = multiprocessing.get_context("spawn")
            self._workers = [
                _WorkerHandle(context, spec, self.transport) for spec in self._specs
            ]
        self._io = self._workers

    def close(self) -> None:
        """Terminate worker processes (idempotent; inline mode is a no-op)."""
        if self._workers is not None:
            for worker in self._workers:
                worker.close()
            self._workers = None
            self._io = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _recall_kernels(self) -> None:
        """Reel the worker kernels back into this process, whole."""
        assert self._workers is not None
        kernels: List[SimulationKernel] = []
        for worker in self._workers:
            worker.send_command(bytes((_OP_FINALIZE,)))
            kernel = pickle.loads(worker.recv_reply()[1:])
            kernel.attach_program(self.compiled)
            kernels.append(kernel)
            worker.close()
        self._workers = None
        self._io = None
        self._kernels = kernels
        self._wire_kernels()

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, event: SimulationEvent) -> None:
        """Queue a typed event for the next drain.

        Events are stamped in call order — the same stamps the serial
        backend would assign — then routed at drain time: deliveries and
        fact events go to the shard hosting their node; link and node
        dynamics broadcast to every kernel (each maintains its replica of
        the global down-link/down-node sets) with only the hosting shard
        counting the event.

        Under ``refresh_mode="wheel"`` an event landing strictly beyond the
        previous refresh horizon first broadcasts a :class:`RefreshHorizon`
        — same guard, same stamp order as the serial kernel's
        :meth:`~repro.net.kernel.SimulationKernel.schedule`, so both
        backends materialize identical refresh timers.
        """
        if (
            self.refresh_mode == "wheel"
            and event.time > self._refresh_horizon
            and not isinstance(event, RefreshHorizon)
        ):
            previous = self._refresh_horizon
            self._refresh_horizon = event.time
            self._control_stamp += 1
            self._pending_external.append(
                (RefreshHorizon(time=previous, horizon=event.time), self._control_stamp)
            )
        self._control_stamp += 1
        self._pending_external.append((event, self._control_stamp))

    def _route_external(self, event: SimulationEvent, stamp: int) -> None:
        shard_count = self.plan.shard_count
        if isinstance(event, MessageDelivery):
            targets = {self.plan.shard_of(event.message.destination): True}
        elif isinstance(event, (FactInjection, FactRetraction, QueryArrival)):
            # A service-plane arrival is handled entirely on the kernel
            # hosting the asking node: admission, root resolution, the query
            # issue and the closed-loop follow-up all happen there.
            targets = {self.plan.shard_of(event.address): True}
        elif isinstance(event, (LinkDown, LinkUp)):
            owner = self.plan.shard_of(event.source)
            targets = {shard: shard == owner for shard in range(shard_count)}
        elif isinstance(event, (NodeCrash, NodeRecover)):
            owner = self.plan.shard_of(event.address)
            targets = {shard: shard == owner for shard in range(shard_count)}
        else:
            # Node-less broadcasts (soft-state refresh, refresh horizons):
            # every kernel expands its own hosted nodes (or drains its own
            # timer wheels); the primary counts the event.
            targets = {shard: shard == 0 for shard in range(shard_count)}
        for shard, owned in targets.items():
            self._flush_buffers.setdefault(shard, []).append((event, stamp, owned))

    def _drain_prime(self) -> Tuple[List[Optional[float]], List[int]]:
        """Start one drain: flush buffered control events to every shard in a
        single round, collecting each shard's next event time, processed
        count, and any exports made *between* drains (a provenance query
        issued after the data plane settled ships its first cross-shard
        requests outside any window).

        In pipelined mode, shards that are certified idle (see
        ``_idle_certified``) and have nothing buffered skip the round-trip
        entirely: their reply is already known — no next event, no exports,
        processed count unchanged."""
        self._flush_buffers = {}
        pending, self._pending_external = self._pending_external, []
        for event, stamp in pending:
            self._route_external(event, stamp)
        buffers, self._flush_buffers = self._flush_buffers, {}
        shard_count = self.plan.shard_count
        contacted = [
            not (
                self.shard_pipeline
                and self._idle_certified[shard]
                and not buffers.get(shard)
            )
            for shard in range(shard_count)
        ]
        for shard, io in enumerate(self._io):
            if not contacted[shard]:
                continue
            frame = _pack_flush(self._codec, buffers.get(shard, []))
            self._coordination_rounds += 1
            self._coordination_bytes += len(frame)
            io.send_command(frame)
        next_times: List[Optional[float]] = [None] * shard_count
        processed = list(self._shard_processed)
        for shard, io in enumerate(self._io):
            if not contacted[shard]:
                continue
            self._idle_certified[shard] = False
            raw = io.recv_reply()
            self._coordination_bytes += len(raw)
            next_times[shard], processed[shard], exports = _unpack_flush_reply(
                self._codec, raw
            )
            self._route_exports(exports)
        return next_times, processed

    # -- running ------------------------------------------------------------------

    def run_until_idle(self) -> bool:
        """Drain all shards to the distributed fixpoint via lookahead windows.

        Returns False when the cumulative ``max_events`` budget ran out.
        """
        self._ensure_running()
        if self.shard_pipeline:
            return self._run_pipelined()
        return self._run_strict()

    def _run_strict(self) -> bool:
        """The lockstep barrier: every shard steps through the same window."""
        window = self.window
        imports = self._pending_imports
        next_times, processed = self._drain_prime()
        while True:
            live = [time for time in next_times if time is not None]
            live.extend(
                deliver_at
                for batch in imports
                for deliver_at, _ in batch
            )
            if not live:
                return self._settle(True, processed)
            if sum(processed) >= self.max_events:
                return self._settle(False, processed)
            horizon = min(live) + window
            within_budget = True
            for shard, io in enumerate(self._io):
                batch, imports[shard] = imports[shard], []
                frame = _pack_window(self._codec, horizon, batch, None)
                self._idle_certified[shard] = False
                self._coordination_rounds += 1
                self._windows_executed += 1
                self._coordination_bytes += len(frame)
                io.send_command(frame)
            for shard, io in enumerate(self._io):
                raw = io.recv_reply()
                self._coordination_bytes += len(raw)
                next_time, _last, ok, count, exports = _unpack_window_reply(
                    self._codec, raw
                )
                next_times[shard] = next_time
                processed[shard] = count
                within_budget = within_budget and ok
                self._route_exports(exports, horizon)
            if not within_budget:
                return self._settle(False, processed)

    def _settle(self, converged: bool, processed: List[int]) -> bool:
        """Record per-shard processed counts at the end of a drain and, when
        the drain reached the distributed fixpoint, certify every shard idle
        (queues empty, export sinks drained, no pending imports)."""
        self._shard_processed = list(processed)
        if converged:
            self._idle_certified = [True] * self.plan.shard_count
            # Quiescence bookkeeping (mirrors the serial kernel's
            # run_until_idle): every shard drops its engines' dead-base
            # marks, so a later re-assertion of a retracted base is not
            # mistaken for an in-flight race with its own anti-delta.
            if self._kernels is not None:
                for kernel in self._kernels:
                    kernel.settle_retractions()
            elif self._workers is not None:
                frame = bytes((_OP_SETTLE,))
                for worker in self._workers:
                    worker.send_command(frame)
                    worker.recv_reply()
        return converged

    def _run_pipelined(self) -> bool:
        """The pipelined coordinator: per-shard horizons, no lockstep.

        Invariant: while shard S computes a grant based at ``e_S`` (its
        earliest pending time when granted), every other shard's *floor* —
        the earliest instant anything it may still emit can be delivered —
        stays at or above S's horizon ``H_S = min over R≠S of floor(R)``,
        because a floor is ``base + W`` while a grant is outstanding and
        ``earliest + W`` (or ``inf`` when idle-empty) otherwise, and
        granting moves ``earliest + W`` to ``base + W`` unchanged.  The
        worker's export self-cap keeps S itself from outrunning feedback
        loops through its own exports.  Consequences:

        * shards with work and far-ahead peers get multi-window leases in
          one round-trip (coalescing — idle-empty peers contribute ``inf``);
        * several shards hold grants at once, so compute overlaps with the
          coordinator's export routing (the pipelined barrier);
        * replies are collected lowest-shard-first, keeping routing order —
          and thus the whole ledger — deterministic.
        """
        codec = self._codec
        window = self.window
        shard_count = self.plan.shard_count
        imports = self._pending_imports
        next_times, processed = self._drain_prime()
        outstanding = [False] * shard_count
        granted_base = [0.0] * shard_count

        def earliest(shard: int) -> Optional[float]:
            time = next_times[shard]
            for deliver_at, _ in imports[shard]:
                if time is None or deliver_at < time:
                    time = deliver_at
            return time

        def floor_of(shard: int) -> float:
            if outstanding[shard]:
                return granted_base[shard] + window
            time = earliest(shard)
            return math.inf if time is None else time + window

        budget_ok = True
        while True:
            exhausted = (
                not budget_ok or sum(processed) >= self.max_events
            )
            if not exhausted:
                floors = [floor_of(shard) for shard in range(shard_count)]
                for shard in range(shard_count):
                    if outstanding[shard]:
                        continue
                    base = earliest(shard)
                    if base is None:
                        continue
                    horizon = min(
                        (floors[other] for other in range(shard_count) if other != shard),
                        default=math.inf,
                    )
                    if horizon <= base:
                        continue
                    batch, imports[shard] = imports[shard], []
                    frame = _pack_window(codec, horizon, batch, window)
                    self._idle_certified[shard] = False
                    self._coordination_rounds += 1
                    self._windows_executed += 1
                    self._coordination_bytes += len(frame)
                    self._io[shard].send_command(frame)
                    outstanding[shard] = True
                    granted_base[shard] = base
                    # floors[shard] is unchanged by the grant (base + window
                    # either way), so the precomputed list stays valid.
            if not any(outstanding):
                if not budget_ok:
                    return self._settle(False, processed)
                if all(earliest(shard) is None for shard in range(shard_count)):
                    return self._settle(True, processed)
                if sum(processed) >= self.max_events:
                    return self._settle(False, processed)
                raise RuntimeError(
                    "pipelined shard coordinator stalled with work pending; "
                    "this indicates a bug in the floor computation"
                )
            shard = next(s for s in range(shard_count) if outstanding[s])
            raw = self._io[shard].recv_reply()
            self._coordination_bytes += len(raw)
            next_time, last_time, ok, count, exports = _unpack_window_reply(
                codec, raw
            )
            outstanding[shard] = False
            next_times[shard] = next_time
            processed[shard] = count
            budget_ok = budget_ok and ok
            base = granted_base[shard]
            if last_time is not None and window > 0:
                self._windows_coalesced += max(0, int((last_time - base) / window))
            self._route_exports(exports, base + window)

    def _route_exports(
        self,
        exports: Iterable[Tuple[float, WireMessage]],
        horizon: Optional[float] = None,
    ) -> None:
        """Queue *exports* for their destination shards.

        *horizon* is the conservative bound the producing window promised
        (strict: the barrier horizon; pipelined: its grant base plus one
        window width); exports collected between drains (no window ran)
        pass ``None`` — every kernel is at a barrier then, so any
        future-time delivery is safe.
        """
        for deliver_at, message in exports:
            if horizon is not None and deliver_at < horizon:
                raise RuntimeError(
                    f"cross-shard delivery at t={deliver_at} violates the "
                    f"conservative lookahead window ending at t={horizon}: "
                    "a message crossed shards faster than the minimum "
                    "cross-shard link latency (direct sends between "
                    "non-adjacent nodes with a small default_latency can do "
                    "this); run this workload with backend='serial'"
                )
            shard = self.plan.shard_of(message.destination)
            self._pending_imports[shard].append((deliver_at, message))

    def run(
        self,
        base_facts: Optional[Dict[Address, Iterable[Fact]]] = None,
        start_time: float = 0.0,
    ) -> SimulationResult:
        """Inject base facts at *start_time* and run to the distributed fixpoint."""
        injected = base_facts if base_facts is not None else self.link_facts()
        for address, facts in injected.items():
            self.schedule(
                FactInjection(time=start_time, address=address, facts=tuple(facts))
            )
        converged = self.run_until_idle()
        return self.finish(converged)

    def finish(self, converged: bool = True) -> SimulationResult:
        """Reassemble per-shard state into one result (stats merge + expiry).

        In process mode the worker kernels are recalled whole, so the
        returned engines are the real post-run engines — provenance stores,
        soft state and all — exactly as the serial backend returns them.
        """
        if self._workers is not None:
            self._recall_kernels()
        if self._kernels is None:
            # finish() before any drain: build the inline kernels so the
            # result carries real (empty) engines.
            self._kernels = [
                spec.build_kernel(compiled=self.compiled) for spec in self._specs
            ]
        self._finished = True
        snapshots = self._kernel_snapshots()
        completion = max([s[4] for s in snapshots] or [0.0])
        for kernel in self._kernels:
            kernel.expire_all(completion)
        stats = self._merged_stats(snapshots)
        stats.completion_time = completion
        return SimulationResult(
            stats=stats,
            engines=self.engines,
            converged=converged,
            events_processed=self._events_processed_total(snapshots),
        )

    # -- aggregation ---------------------------------------------------------------

    def _kernel_snapshots(
        self,
    ) -> List[Tuple[NetworkStats, int, int, int, float, Dict[Address, int]]]:
        if self._kernels is not None:
            for kernel in self._kernels:
                kernel.refresh_provenance_stats()
            return [
                (
                    kernel.stats,
                    kernel.scheduler.events_scheduled,
                    kernel._uncounted_scheduled,
                    kernel._events_processed,
                    kernel.current_time(),
                    dict(kernel.query_receipts),
                )
                for kernel in self._kernels
            ]
        if self._workers is not None:
            snapshots = []
            for worker in self._workers:
                worker.send_command(bytes((_OP_STATS,)))
                snapshots.append(pickle.loads(worker.recv_reply()[1:]))
            return snapshots
        return []

    def _merged_stats(self, snapshots=None) -> NetworkStats:
        if snapshots is None:
            snapshots = self._kernel_snapshots()
        merged = NetworkStats()
        for stats, _scheduled, _uncounted, processed, _busy, _receipts in snapshots:
            # merge() copies into records it owns; the kernels' live stats
            # objects are never aliased or mutated.
            merged.merge(stats)
            merged.total_events += processed
        # Settle cross-shard query billing: responses that passed through a
        # kernel not hosting their asker were recorded as receipts (the
        # kernel's own stats book stays strictly local); the charge lands on
        # the asker's merged record here, matching the serial backend's
        # per-node query_bytes_charged exactly.
        for _stats, _scheduled, _uncounted, _processed, _busy, receipts in snapshots:
            for asker in sorted(receipts):
                merged.node(asker).query_bytes_charged += receipts[asker]
        # The coordination ledger lives on the coordinator, not in any
        # kernel: assigned, not merged (serial runs report zeros).
        merged.coordination_rounds = self._coordination_rounds
        merged.coordination_bytes = self._coordination_bytes
        merged.windows_executed = self._windows_executed
        merged.windows_coalesced = self._windows_coalesced
        return merged

    def _events_processed_total(self, snapshots=None) -> int:
        if snapshots is None:
            snapshots = self._kernel_snapshots()
        return sum(s[3] for s in snapshots)

    def events_scheduled(self) -> int:
        """Scheduled-event total matching the serial backend's counter.

        Broadcast copies a kernel processes only for their global-state side
        effects are subtracted — they have no serial counterpart.
        """
        return sum(s[1] - s[2] for s in self._kernel_snapshots())

    @property
    def stats(self) -> NetworkStats:
        """The merged network statistics across every shard (live snapshot)."""
        return self._merged_stats()

    @property
    def engines(self) -> Dict[Address, NodeEngine]:
        """Per-node engines in topology order (inline, or after ``finish``)."""
        if self._kernels is None:
            raise RuntimeError(
                "shard worker processes hold the engines while the run is in "
                "flight; read them after finish()/run(), or use "
                "shard_mode='inline'"
            )
        by_address: Dict[Address, NodeEngine] = {}
        for kernel in self._kernels:
            by_address.update(kernel.engines)
        return {
            address: by_address[address]
            for address in self.topology.nodes
            if address in by_address
        }

    def current_time(self) -> float:
        """The latest instant any node on any shard has been busy until."""
        snapshots = self._kernel_snapshots()
        return max([s[4] for s in snapshots] or [0.0])

    def expire_all(self, now: float) -> None:
        # Expiry sweeps databases and gauges only — it cannot schedule
        # events or produce exports, so idle certificates survive it.
        if self._kernels is not None:
            for kernel in self._kernels:
                kernel.expire_all(now)
        elif self._workers is not None:
            frame = bytes((_OP_EXPIRE,)) + _F64.pack(now)
            for worker in self._workers:
                worker.send_command(frame)
                worker.recv_reply()

    def count_facts(self, relation: str) -> int:
        """Stored-tuple count of *relation* across all shards."""
        if self._kernels is not None:
            return sum(kernel.count_facts(relation) for kernel in self._kernels)
        if self._workers is not None:
            frame = bytes((_OP_COUNT,)) + pickle.dumps(
                relation, protocol=pickle.HIGHEST_PROTOCOL
            )
            total = 0
            for worker in self._workers:
                worker.send_command(frame)
                total += pickle.loads(worker.recv_reply()[1:])
            return total
        return 0

    # -- workload -----------------------------------------------------------------

    def link_facts(self) -> Dict[Address, List[Fact]]:
        """The link base tuples implied by the topology, shaped for the program.

        Same shaping as :meth:`SimulationKernel.link_facts` (via the shared
        :func:`~repro.net.kernel.shape_link_facts`), resolving the link
        relation's arity from the compiled catalog — the coordinator may
        hold no engines while workers run.
        """
        relation = self.link_relation
        arity = 3
        if relation in self._catalog:
            arity = self._catalog.schema(relation).arity
        return shape_link_facts(self.topology, relation, arity)

    # -- dynamic state -------------------------------------------------------------

    def _any_kernel(self) -> SimulationKernel:
        if self._kernels is None:
            raise RuntimeError(
                "dynamic state lives in the shard workers while the run is "
                "in flight; use shard_mode='inline' for mid-run inspection"
            )
        return self._kernels[0]

    def link_is_up(self, source: Address, destination: Address) -> bool:
        return self._any_kernel().link_is_up(source, destination)

    def node_is_up(self, address: Address) -> bool:
        return self._any_kernel().node_is_up(address)

    @property
    def keystore(self):
        """Key material (identical in every kernel: one seeded derivation)."""
        return self._any_kernel().keystore

    @property
    def registry(self):
        return self._any_kernel().registry

    # -- service plane -------------------------------------------------------------

    def serve(self, workload: QueryWorkload, start: Optional[float] = None) -> int:
        """Schedule *workload*'s arrivals, opening at *start* (default: now).

        Mirrors :meth:`SimulationKernel.serve`: the precomputed arrival
        stream is identical (a pure function of the workload and the
        topology's node list), and each arrival is routed to the shard
        hosting its asking node at the next drain.  Works in every shard
        mode — arrivals are handled entirely kernel-side, so process-mode
        workers serve queries mid-run even though the coordinator cannot
        reach their engines.
        """
        opening = self.current_time() if start is None else start
        arrivals = workload.events(self.topology.nodes, opening)
        for event in arrivals:
            self.schedule(event)
        return len(arrivals)

    # -- provenance queries --------------------------------------------------------

    def _kernel_hosting(self, address: Address) -> SimulationKernel:
        if self._kernels is None:
            raise RuntimeError(
                "in-network provenance queries on the sharded backend need "
                "the kernels in-process: use shard_mode='inline', or query "
                "after finish()/run() completed the data plane"
            )
        return self._kernels[self.plan.shard_of(address)]

    def issue_query(
        self, query: ProvenanceQuery, now: Optional[float] = None
    ) -> PendingQuery:
        """Start an in-network provenance query (see the serial docstring).

        The query engine of the shard hosting the asking node drives the
        request fan-out; cross-shard requests and responses ride the same
        window barriers as data traffic.
        """
        at = self.current_time() if now is None else now
        # Issuing touches the asker's kernel directly (timeout scheduling,
        # possible cross-shard request exports): its idle certificate is
        # void until the next flush collects what happened.
        self._idle_certified[self.plan.shard_of(query.at)] = False
        return self._kernel_hosting(query.at).queries.issue(query, now=at)

    def query(
        self,
        root,
        at: Address,
        mode: str = "online",
        condensed: bool = False,
        authenticated: bool = False,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Issue a provenance query, run it to completion, return its result."""
        key = as_fact_key(root)
        pending = self.issue_query(
            ProvenanceQuery(
                root=key,
                at=at,
                mode=mode,
                condensed=condensed,
                authenticated=authenticated,
                timeout=timeout,
            )
        )
        self.run_until_idle()
        return pending.result()

    def __repr__(self) -> str:
        return (
            f"ShardedSimulator(nodes={self.topology.node_count}, "
            f"shards={self.plan.shard_count}, mode={self.shard_mode!r}, "
            f"pipeline={self.shard_pipeline}, transport={self.transport!r})"
        )
