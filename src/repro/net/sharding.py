"""The sharded execution backend: parallel per-shard kernels.

The serial backend replays a distributed system one event at a time; this
module partitions the topology into K shards and runs one
:class:`~repro.net.kernel.SimulationKernel` per shard — in worker processes
(``multiprocessing``, spawn-safe) or in-process for debugging — while
keeping the simulation *exactly* equivalent to the serial schedule:

* **Partitioning** (:func:`partition_topology`) is a deterministic, seeded
  edge-cut heuristic: K spread-out seed nodes grow balanced regions
  greedily, always absorbing the unassigned neighbour with the most links
  into the region, so most traffic stays shard-local.

* **Synchronization** is conservative (null-message-free Chandy–Misra in
  spirit): all cross-shard traffic pays at least the minimum cross-shard
  link propagation latency ``W``, so a window ``[T, T + W)`` can execute in
  every shard *in parallel* without communication — any cross-shard message
  produced inside the window delivers at or after the window's end.  At the
  window barrier the coordinator exchanges the exported
  ``MessageDelivery`` events and merges them into the destination shards'
  queues.

* **Determinism / serial equivalence**: event tie-breaking is content-based
  (see :mod:`repro.net.events`) and message sequence numbers are per
  sending *node*, so each shard replays exactly the serial schedule
  restricted to its nodes.  Derived facts, delivery sequence numbers and
  every integer/byte statistic are identical to ``backend="serial"``;
  floating-point aggregates agree up to summation order (per-node floats
  are bit-identical; only cross-node sums may associate differently), the
  same contract ``batch_receive`` established.

* **Dynamics**: control events (link failure/recovery, node crash/recovery,
  soft-state refresh) broadcast to every kernel — each updates its replica
  of the down-link/down-node sets, while only the shard hosting the
  affected node performs retraction cascades, engine resets and
  re-injection, and counts the event, keeping merged event totals equal to
  the serial backend's.

The public entry point is ``repro.api``::

    network = Network.build(topology=200, program="best-path",
                            provenance="ndlog", backend="sharded", shards=4)
    result = network.run()   # same facts and integer stats as serial
"""

from __future__ import annotations

import math
import multiprocessing
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.datalog.ast import Program
from repro.datalog.catalog import Catalog
from repro.datalog.planner import CompiledProgram, compile_program
from repro.engine.node_engine import EngineConfig, NodeEngine
from repro.engine.tuples import Fact, as_fact_key
from repro.net.address import Address
from repro.net.events import (
    FactInjection,
    FactRetraction,
    LinkDown,
    LinkUp,
    MessageDelivery,
    NodeCrash,
    NodeRecover,
    SimulationEvent,
)
from repro.net.kernel import (
    CostModel,
    SimulationKernel,
    SimulationResult,
    shape_link_facts,
)
from repro.net.link import DEFAULT_BANDWIDTH, DEFAULT_LATENCY
from repro.net.query import (
    DEFAULT_QUERY_TIMEOUT,
    PendingQuery,
    ProvenanceQuery,
    QueryResult,
)
from repro.net.stats import NetworkStats, WireMessage
from repro.net.topology import Topology

#: Execution modes for the shard workers.
SHARD_MODES = ("processes", "inline")


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of one topology into K shards."""

    shards: Tuple[Tuple[Address, ...], ...]
    assignment: Dict[Address, int] = field(hash=False, compare=False)
    #: Directed links whose endpoints live on different shards.
    cut_links: Tuple[Tuple[Address, Address], ...] = ()
    #: Conservative lookahead window: the minimum propagation latency of any
    #: cut link (infinite when nothing crosses — one shard, or a degenerate
    #: partition).
    window: float = math.inf

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, address: Address, default: int = 0) -> int:
        return self.assignment.get(address, default)


def partition_topology(
    topology: Topology, shards: int, seed: int = 0
) -> ShardPlan:
    """Split *topology* into *shards* balanced node groups with few cut edges.

    Deterministic in *seed*: K seed nodes are chosen by a farthest-point
    sweep from a seeded random start, then regions grow breadth-first one
    node at a time — always the smallest region first, absorbing the next
    unassigned node on its BFS frontier (discovery order; topology order
    within one hop) and falling back to the first unassigned node when a
    frontier empties (disconnected leftovers).  Multi-seed BFS growth keeps
    regions contiguous and balanced — the classic cheap edge-cut heuristic —
    with no external graph library and reproducible results everywhere.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    nodes = list(topology.nodes)
    shards = min(shards, len(nodes))
    order = {node: position for position, node in enumerate(nodes)}
    neighbours: Dict[Address, Set[Address]] = {node: set() for node in nodes}
    for link in topology.links:
        neighbours[link.source].add(link.destination)
        neighbours[link.destination].add(link.source)

    def hops_from(start: Address) -> Dict[Address, int]:
        distance = {start: 0}
        frontier = [start]
        while frontier:
            next_frontier: List[Address] = []
            for node in frontier:
                for peer in neighbours[node]:
                    if peer not in distance:
                        distance[peer] = distance[node] + 1
                        next_frontier.append(peer)
            frontier = next_frontier
        return distance

    rng = random.Random(seed)
    seeds = [nodes[rng.randrange(len(nodes))]]
    while len(seeds) < shards:
        # Farthest-point spread: the node maximising its distance to the
        # nearest existing seed (unreachable nodes count as infinitely far).
        best: Optional[Address] = None
        best_rank: Tuple[float, int] = (-1.0, 0)
        distances = [hops_from(existing) for existing in seeds]
        for node in nodes:
            if node in seeds:
                continue
            nearest = min(d.get(node, math.inf) for d in distances)
            rank = (nearest, -order[node])
            if rank > best_rank:
                best, best_rank = node, rank
        assert best is not None
        seeds.append(best)

    assignment: Dict[Address, int] = {}
    members: List[List[Address]] = [[] for _ in range(shards)]
    frontiers: List[List[Address]] = [[] for _ in range(shards)]

    def sorted_neighbours(node: Address) -> List[Address]:
        return sorted(neighbours[node], key=lambda peer: order[peer])

    def assign(node: Address, shard: int) -> None:
        assignment[node] = shard
        members[shard].append(node)
        frontiers[shard].extend(sorted_neighbours(node))

    for shard, node in enumerate(seeds):
        assign(node, shard)
    remaining = len(nodes) - len(seeds)
    cursor = 0  # topology-order fallback for disconnected leftovers
    while remaining:
        shard = min(range(shards), key=lambda s: (len(members[s]), s))
        frontier = frontiers[shard]
        chosen: Optional[Address] = None
        while frontier:
            candidate = frontier.pop(0)
            if candidate not in assignment:
                chosen = candidate
                break
        if chosen is None:
            while nodes[cursor] in assignment:
                cursor += 1
            chosen = nodes[cursor]
        assign(chosen, shard)
        remaining -= 1

    cut = tuple(
        (link.source, link.destination)
        for link in topology.links
        if assignment[link.source] != assignment[link.destination]
    )
    window = math.inf
    for source, destination in cut:
        link = topology.link_between(source, destination)
        if link is not None:
            window = min(window, link.latency)
    if cut and window <= 0:
        raise ValueError(
            "the sharded backend needs positive propagation latency on "
            "every cross-shard link: the conservative lookahead window is "
            "their minimum latency, and a zero window cannot make progress"
        )
    return ShardPlan(
        shards=tuple(tuple(group) for group in members),
        assignment=assignment,
        cut_links=cut,
        window=window,
    )


# ---------------------------------------------------------------------------
# Worker processes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardSpec:
    """Everything a spawn-safe worker needs to rebuild its shard kernel.

    Carries the *localized program AST* rather than the compiled program:
    compiled plans hold closures that cannot cross a spawn boundary, and
    compilation is deterministic, so every worker (and the coordinator)
    compiles identical plans from the same AST.
    """

    topology: Topology
    program: Program
    config: EngineConfig
    hosted: Tuple[Address, ...]
    primary: bool
    cost_model: Optional[CostModel] = None
    key_bits: int = 256
    max_events: int = 5_000_000
    default_latency: float = DEFAULT_LATENCY
    default_bandwidth: float = DEFAULT_BANDWIDTH
    batching: bool = True
    batch_receive: bool = True
    link_relation: str = "link"
    query_timeout: float = DEFAULT_QUERY_TIMEOUT

    def build_kernel(self, compiled: Optional[CompiledProgram] = None) -> SimulationKernel:
        return SimulationKernel(
            topology=self.topology,
            compiled=compiled if compiled is not None else compile_program(self.program),
            config=self.config,
            cost_model=self.cost_model,
            key_bits=self.key_bits,
            max_events=self.max_events,
            default_latency=self.default_latency,
            default_bandwidth=self.default_bandwidth,
            batching=self.batching,
            batch_receive=self.batch_receive,
            link_relation=self.link_relation,
            query_timeout=self.query_timeout,
            hosted=self.hosted,
            primary=self.primary,
        )


def _shard_worker_main(conn, spec: ShardSpec) -> None:
    """Worker entry point: serve kernel operations over *conn* until closed.

    Module-level (importable) and argument-picklable, so it is safe under
    the ``spawn`` start method — the only one available everywhere.
    """
    try:
        kernel = spec.build_kernel()
        kernel.enable_exports()
    except BaseException as error:  # pragma: no cover - construction bugs
        conn.send(("error", f"{type(error).__name__}: {error}"))
        return
    while True:
        try:
            request = conn.recv()
        except EOFError:
            return  # the coordinator is gone; nothing left to serve
        op = request[0]
        try:
            if op == "flush":
                for event, stamp, owned in request[1]:
                    kernel.schedule_stamped(event, stamp, owned)
                reply = (kernel.scheduler.peek_time(), kernel.take_exports())
            elif op == "window":
                _, horizon, imports = request
                exports, next_time, within_budget = kernel.run_window(
                    horizon, imports
                )
                reply = (exports, next_time, within_budget, kernel._events_processed)
            elif op == "stats":
                # Storage-tier gauges live in the engines, which never leave
                # this worker mid-run: fold them into the stats snapshot
                # before it crosses the process boundary.
                kernel.refresh_provenance_stats()
                reply = (
                    kernel.stats,
                    kernel.scheduler.events_scheduled,
                    kernel._uncounted_scheduled,
                    kernel._events_processed,
                    kernel.current_time(),
                )
            elif op == "count_facts":
                reply = kernel.count_facts(request[1])
            elif op == "expire_all":
                kernel.expire_all(request[1])
                reply = None
            elif op == "finalize":
                conn.send(("ok", kernel))
                conn.close()
                return
            else:  # pragma: no cover - protocol bugs
                raise ValueError(f"unknown shard worker op {op!r}")
        except BaseException as error:
            try:
                conn.send(("error", f"{type(error).__name__}: {error}"))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            return
        conn.send(("ok", reply))


class _WorkerHandle:
    """One spawned shard worker plus its request/reply pipe."""

    def __init__(self, context, spec: ShardSpec) -> None:
        self.connection, child = context.Pipe()
        self.process = context.Process(
            target=_shard_worker_main, args=(child, spec), daemon=True
        )
        self.process.start()
        child.close()

    def request(self, *message):
        self.connection.send(message)
        status, payload = self.connection.recv()
        if status == "error":
            raise RuntimeError(f"shard worker failed: {payload}")
        return payload

    def close(self) -> None:
        try:
            self.connection.close()
        except OSError:  # pragma: no cover
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)


class _SchedulerView:
    """The tiny slice of the scheduler surface phase reports consume."""

    def __init__(self, backend: "ShardedSimulator") -> None:
        self._backend = backend

    @property
    def events_scheduled(self) -> int:
        return self._backend.events_scheduled()


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------

class ShardedSimulator:
    """Coordinates K shard kernels behind the serial simulator's surface.

    Presents the same running surface as a
    :class:`~repro.net.kernel.SimulationKernel` hosting all nodes —
    ``schedule`` / ``run_until_idle`` / ``run`` / ``finish`` / ``query`` /
    ``stats`` / ``engines`` — so the :class:`repro.api.Network` facade, the
    harness sweeps and the scenario scripts drive either backend unchanged.

    ``shard_mode="processes"`` (the default) runs each kernel in a spawned
    worker; ``"inline"`` runs them all in-process — same windows, same
    barriers, same results — which is the debugger-friendly mode and the
    one that keeps engines inspectable mid-run.  After ``finish()`` the
    worker kernels are reeled back in whole (engines, provenance stores,
    dynamic state), so post-run inspection and in-network provenance
    queries work identically in both modes.
    """

    def __init__(
        self,
        topology: Topology,
        compiled: CompiledProgram,
        config: EngineConfig,
        cost_model: Optional[CostModel] = None,
        key_bits: int = 256,
        max_events: int = 5_000_000,
        default_latency: float = DEFAULT_LATENCY,
        default_bandwidth: float = DEFAULT_BANDWIDTH,
        batching: bool = True,
        batch_receive: bool = True,
        link_relation: str = "link",
        query_timeout: float = DEFAULT_QUERY_TIMEOUT,
        shards: int = 2,
        shard_mode: str = "processes",
        shard_seed: int = 0,
    ) -> None:
        if shard_mode not in SHARD_MODES:
            raise ValueError(
                f"unknown shard_mode {shard_mode!r}; expected one of {SHARD_MODES}"
            )
        self.topology = topology
        self.compiled = compiled
        self.config = config
        self.cost_model = cost_model
        self.key_bits = key_bits
        self.max_events = max_events
        self.default_latency = default_latency
        self.default_bandwidth = default_bandwidth
        self.batching = batching
        self.batch_receive = batch_receive
        self.link_relation = link_relation
        self.query_timeout = query_timeout
        self.shard_mode = shard_mode
        self.plan = partition_topology(topology, shards, seed=shard_seed)
        #: The effective conservative lookahead: cross-shard traffic pays at
        #: least the minimum cut-link latency — or ``default_latency`` for
        #: sends between nodes without a directed topology link (Best-Path
        #: advertises upstream along *reverse* links, which take that path).
        self.window = min(self.plan.window, default_latency)
        if self.plan.cut_links and self.window <= 0:
            raise ValueError(
                "the sharded backend needs a positive default_latency: "
                "linkless sends (reverse-link advertisements) bound the "
                "conservative lookahead window"
            )
        self.scheduler = _SchedulerView(self)

        self._catalog = Catalog.from_program(compiled.program)
        self._specs = [
            ShardSpec(
                topology=topology,
                program=compiled.program,
                config=config,
                hosted=group,
                primary=(index == 0),
                cost_model=cost_model,
                key_bits=key_bits,
                max_events=max_events,
                default_latency=default_latency,
                default_bandwidth=default_bandwidth,
                batching=batching,
                batch_receive=batch_receive,
                link_relation=link_relation,
                query_timeout=query_timeout,
            )
            for index, group in enumerate(self.plan.shards)
        ]
        #: In-process kernels (inline mode always; process mode after the
        #: workers were finalized and reeled back in).
        self._kernels: Optional[List[SimulationKernel]] = None
        self._workers: Optional[List[_WorkerHandle]] = None
        #: Externally scheduled events buffered until the next drain.
        self._pending_external: List[Tuple[SimulationEvent, int]] = []
        #: Per-shard batches built while routing a flush (process mode).
        self._flush_buffers: Dict[int, List] = {}
        #: Cross-shard deliveries awaiting import, per destination shard.
        self._pending_imports: List[List[Tuple[float, WireMessage]]] = [
            [] for _ in range(self.plan.shard_count)
        ]
        self._control_stamp = 0
        self._finished = False
        if shard_mode == "inline":
            self._kernels = [
                spec.build_kernel(compiled=compiled) for spec in self._specs
            ]
            self._wire_kernels()

    def _wire_kernels(self) -> None:
        """Wire in-process kernels into one sharded whole.

        Deliveries to non-hosted destinations accumulate for barrier
        exchange — permanently, covering sends made between drains (a
        query's first cross-shard requests) — and each kernel's query
        engine resolves pending queries by *asker* across kernels, because
        query ids are only unique per kernel.
        """
        assert self._kernels is not None

        def find_pending(asker: Address, query_id: int):
            kernel = self._kernels[self.plan.shard_of(asker)]
            return kernel.queries._queries.get(query_id)

        for kernel in self._kernels:
            kernel.enable_exports()
            kernel.queries.resolve_remote = find_pending

    # -- worker lifecycle --------------------------------------------------------

    def _ensure_running(self) -> None:
        if self._kernels is not None or self._workers is not None:
            return
        context = multiprocessing.get_context("spawn")
        self._workers = [_WorkerHandle(context, spec) for spec in self._specs]

    def close(self) -> None:
        """Terminate worker processes (idempotent; inline mode is a no-op)."""
        if self._workers is not None:
            for worker in self._workers:
                worker.close()
            self._workers = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _recall_kernels(self) -> None:
        """Reel the worker kernels back into this process, whole."""
        assert self._workers is not None
        kernels: List[SimulationKernel] = []
        for worker in self._workers:
            kernel = worker.request("finalize")
            kernel.attach_program(self.compiled)
            kernels.append(kernel)
            worker.close()
        self._workers = None
        self._kernels = kernels
        self._wire_kernels()

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, event: SimulationEvent) -> None:
        """Queue a typed event for the next drain.

        Events are stamped in call order — the same stamps the serial
        backend would assign — then routed at drain time: deliveries and
        fact events go to the shard hosting their node; link and node
        dynamics broadcast to every kernel (each maintains its replica of
        the global down-link/down-node sets) with only the hosting shard
        counting the event.
        """
        self._control_stamp += 1
        self._pending_external.append((event, self._control_stamp))

    def _route_external(self, event: SimulationEvent, stamp: int) -> None:
        shard_count = self.plan.shard_count
        if isinstance(event, MessageDelivery):
            targets = {self.plan.shard_of(event.message.destination): True}
        elif isinstance(event, (FactInjection, FactRetraction)):
            targets = {self.plan.shard_of(event.address): True}
        elif isinstance(event, (LinkDown, LinkUp)):
            owner = self.plan.shard_of(event.source)
            targets = {shard: shard == owner for shard in range(shard_count)}
        elif isinstance(event, (NodeCrash, NodeRecover)):
            owner = self.plan.shard_of(event.address)
            targets = {shard: shard == owner for shard in range(shard_count)}
        else:
            # Node-less broadcasts (soft-state refresh): every kernel
            # expands its own hosted nodes; the primary counts the event.
            targets = {shard: shard == 0 for shard in range(shard_count)}
        for shard, owned in targets.items():
            if self._kernels is not None:
                self._kernels[shard].schedule_stamped(event, stamp, owned)
            else:
                self._flush_buffers.setdefault(shard, []).append(
                    (event, stamp, owned)
                )

    def _flush_external(self) -> None:
        if not self._pending_external:
            return
        self._flush_buffers = {}
        pending, self._pending_external = self._pending_external, []
        for event, stamp in pending:
            self._route_external(event, stamp)
        if self._workers is not None:
            for shard, worker in enumerate(self._workers):
                batch = self._flush_buffers.get(shard)
                if batch:
                    worker.request("flush", batch)
        self._flush_buffers = {}

    # -- running ------------------------------------------------------------------

    def run_until_idle(self) -> bool:
        """Drain all shards to the distributed fixpoint via lookahead windows.

        Returns False when the cumulative ``max_events`` budget ran out.
        """
        self._ensure_running()
        self._flush_external()
        window = self.window
        imports = self._pending_imports
        next_times: List[Optional[float]] = [None] * self.plan.shard_count
        # Prime the per-shard next event times, collecting any exports made
        # *between* drains (a provenance query issued after the data plane
        # settled ships its first cross-shard requests outside any window).
        if self._kernels is not None:
            for shard, kernel in enumerate(self._kernels):
                next_times[shard] = kernel.scheduler.peek_time()
                self._route_exports(kernel.take_exports())
        else:
            for shard, worker in enumerate(self._workers):
                next_times[shard], exports = worker.request("flush", [])
                self._route_exports(exports)
        # Per-shard processed-event counts, refreshed from each window's
        # reply: the budget check must not cost a stats round-trip per
        # window (process mode pickles full per-node stats for those).
        processed = [0] * self.plan.shard_count
        if self._kernels is not None:
            for shard, kernel in enumerate(self._kernels):
                processed[shard] = kernel._events_processed
        while True:
            live = [time for time in next_times if time is not None]
            live.extend(
                deliver_at
                for batch in imports
                for deliver_at, _ in batch
            )
            if not live:
                return True
            if sum(processed) >= self.max_events:
                return False
            horizon = min(live) + window
            within_budget = True
            if self._kernels is not None:
                for shard, kernel in enumerate(self._kernels):
                    batch, imports[shard] = imports[shard], []
                    exports, next_times[shard], ok = kernel.run_window(
                        horizon, batch
                    )
                    processed[shard] = kernel._events_processed
                    within_budget = within_budget and ok
                    self._route_exports(exports, horizon)
            else:
                replies = []
                for shard, worker in enumerate(self._workers):
                    batch, imports[shard] = imports[shard], []
                    worker.connection.send(("window", horizon, batch))
                    replies.append(worker)
                for shard, worker in enumerate(replies):
                    status, payload = worker.connection.recv()
                    if status == "error":
                        raise RuntimeError(f"shard worker failed: {payload}")
                    exports, next_times[shard], ok, processed[shard] = payload
                    within_budget = within_budget and ok
                    self._route_exports(exports, horizon)
            if not within_budget:
                return False

    def _route_exports(
        self,
        exports: Iterable[Tuple[float, WireMessage]],
        horizon: Optional[float] = None,
    ) -> None:
        """Queue *exports* for their destination shards.

        *horizon* is the end of the window that produced them; exports
        collected between drains (no window ran) pass ``None`` — every
        kernel is at a barrier then, so any future-time delivery is safe.
        """
        for deliver_at, message in exports:
            if horizon is not None and deliver_at < horizon:
                raise RuntimeError(
                    f"cross-shard delivery at t={deliver_at} violates the "
                    f"conservative lookahead window ending at t={horizon}: "
                    "a message crossed shards faster than the minimum "
                    "cross-shard link latency (direct sends between "
                    "non-adjacent nodes with a small default_latency can do "
                    "this); run this workload with backend='serial'"
                )
            shard = self.plan.shard_of(message.destination)
            self._pending_imports[shard].append((deliver_at, message))

    def run(
        self,
        base_facts: Optional[Dict[Address, Iterable[Fact]]] = None,
        start_time: float = 0.0,
    ) -> SimulationResult:
        """Inject base facts at *start_time* and run to the distributed fixpoint."""
        injected = base_facts if base_facts is not None else self.link_facts()
        for address, facts in injected.items():
            self.schedule(
                FactInjection(time=start_time, address=address, facts=tuple(facts))
            )
        converged = self.run_until_idle()
        return self.finish(converged)

    def finish(self, converged: bool = True) -> SimulationResult:
        """Reassemble per-shard state into one result (stats merge + expiry).

        In process mode the worker kernels are recalled whole, so the
        returned engines are the real post-run engines — provenance stores,
        soft state and all — exactly as the serial backend returns them.
        """
        if self._workers is not None:
            self._recall_kernels()
        if self._kernels is None:
            # finish() before any drain: build the inline kernels so the
            # result carries real (empty) engines.
            self._kernels = [
                spec.build_kernel(compiled=self.compiled) for spec in self._specs
            ]
        self._finished = True
        snapshots = self._kernel_snapshots()
        completion = max([s[4] for s in snapshots] or [0.0])
        for kernel in self._kernels:
            kernel.expire_all(completion)
        stats = self._merged_stats(snapshots)
        stats.completion_time = completion
        return SimulationResult(
            stats=stats,
            engines=self.engines,
            converged=converged,
            events_processed=self._events_processed_total(snapshots),
        )

    # -- aggregation ---------------------------------------------------------------

    def _kernel_snapshots(self) -> List[Tuple[NetworkStats, int, int, int, float]]:
        if self._kernels is not None:
            for kernel in self._kernels:
                kernel.refresh_provenance_stats()
            return [
                (
                    kernel.stats,
                    kernel.scheduler.events_scheduled,
                    kernel._uncounted_scheduled,
                    kernel._events_processed,
                    kernel.current_time(),
                )
                for kernel in self._kernels
            ]
        if self._workers is not None:
            return [worker.request("stats") for worker in self._workers]
        return []

    def _merged_stats(self, snapshots=None) -> NetworkStats:
        if snapshots is None:
            snapshots = self._kernel_snapshots()
        merged = NetworkStats()
        for stats, _scheduled, _uncounted, processed, _busy in snapshots:
            # merge() copies into records it owns; the kernels' live stats
            # objects are never aliased or mutated.
            merged.merge(stats)
            merged.total_events += processed
        return merged

    def _events_processed_total(self, snapshots=None) -> int:
        if snapshots is None:
            snapshots = self._kernel_snapshots()
        return sum(s[3] for s in snapshots)

    def events_scheduled(self) -> int:
        """Scheduled-event total matching the serial backend's counter.

        Broadcast copies a kernel processes only for their global-state side
        effects are subtracted — they have no serial counterpart.
        """
        return sum(s[1] - s[2] for s in self._kernel_snapshots())

    @property
    def stats(self) -> NetworkStats:
        """The merged network statistics across every shard (live snapshot)."""
        return self._merged_stats()

    @property
    def engines(self) -> Dict[Address, NodeEngine]:
        """Per-node engines in topology order (inline, or after ``finish``)."""
        if self._kernels is None:
            raise RuntimeError(
                "shard worker processes hold the engines while the run is in "
                "flight; read them after finish()/run(), or use "
                "shard_mode='inline'"
            )
        by_address: Dict[Address, NodeEngine] = {}
        for kernel in self._kernels:
            by_address.update(kernel.engines)
        return {
            address: by_address[address]
            for address in self.topology.nodes
            if address in by_address
        }

    def current_time(self) -> float:
        """The latest instant any node on any shard has been busy until."""
        snapshots = self._kernel_snapshots()
        return max([s[4] for s in snapshots] or [0.0])

    def expire_all(self, now: float) -> None:
        if self._kernels is not None:
            for kernel in self._kernels:
                kernel.expire_all(now)
        elif self._workers is not None:
            for worker in self._workers:
                worker.request("expire_all", now)

    def count_facts(self, relation: str) -> int:
        """Stored-tuple count of *relation* across all shards."""
        if self._kernels is not None:
            return sum(kernel.count_facts(relation) for kernel in self._kernels)
        if self._workers is not None:
            return sum(
                worker.request("count_facts", relation) for worker in self._workers
            )
        return 0

    # -- workload -----------------------------------------------------------------

    def link_facts(self) -> Dict[Address, List[Fact]]:
        """The link base tuples implied by the topology, shaped for the program.

        Same shaping as :meth:`SimulationKernel.link_facts` (via the shared
        :func:`~repro.net.kernel.shape_link_facts`), resolving the link
        relation's arity from the compiled catalog — the coordinator may
        hold no engines while workers run.
        """
        relation = self.link_relation
        arity = 3
        if relation in self._catalog:
            arity = self._catalog.schema(relation).arity
        return shape_link_facts(self.topology, relation, arity)

    # -- dynamic state -------------------------------------------------------------

    def _any_kernel(self) -> SimulationKernel:
        if self._kernels is None:
            raise RuntimeError(
                "dynamic state lives in the shard workers while the run is "
                "in flight; use shard_mode='inline' for mid-run inspection"
            )
        return self._kernels[0]

    def link_is_up(self, source: Address, destination: Address) -> bool:
        return self._any_kernel().link_is_up(source, destination)

    def node_is_up(self, address: Address) -> bool:
        return self._any_kernel().node_is_up(address)

    @property
    def keystore(self):
        """Key material (identical in every kernel: one seeded derivation)."""
        return self._any_kernel().keystore

    @property
    def registry(self):
        return self._any_kernel().registry

    # -- provenance queries --------------------------------------------------------

    def _kernel_hosting(self, address: Address) -> SimulationKernel:
        if self._kernels is None:
            raise RuntimeError(
                "in-network provenance queries on the sharded backend need "
                "the kernels in-process: use shard_mode='inline', or query "
                "after finish()/run() completed the data plane"
            )
        return self._kernels[self.plan.shard_of(address)]

    def issue_query(
        self, query: ProvenanceQuery, now: Optional[float] = None
    ) -> PendingQuery:
        """Start an in-network provenance query (see the serial docstring).

        The query engine of the shard hosting the asking node drives the
        request fan-out; cross-shard requests and responses ride the same
        window barriers as data traffic.
        """
        at = self.current_time() if now is None else now
        return self._kernel_hosting(query.at).queries.issue(query, now=at)

    def query(
        self,
        root,
        at: Address,
        mode: str = "online",
        condensed: bool = False,
        authenticated: bool = False,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Issue a provenance query, run it to completion, return its result."""
        key = as_fact_key(root)
        pending = self.issue_query(
            ProvenanceQuery(
                root=key,
                at=at,
                mode=mode,
                condensed=condensed,
                authenticated=authenticated,
                timeout=timeout,
            )
        )
        self.run_until_idle()
        return pending.result()

    def __repr__(self) -> str:
        return (
            f"ShardedSimulator(nodes={self.topology.node_count}, "
            f"shards={self.plan.shard_count}, mode={self.shard_mode!r})"
        )
