"""In-network provenance queries: traceback as real network traffic.

The paper's core claim is that provenance is *network state*: maintained
declaratively, and — crucially — **queried over the network**.  The legacy
:func:`repro.provenance.distributed.traceback` answers a traceback by
resolving per-node stores through a Python callable, costing zero simulated
messages; it remains the *zero-cost oracle*.  This module is the paid path:
a :class:`ProvenanceQuery` compiles into :class:`QueryRequest` /
:class:`QueryResponse` wire messages dispatched through the simulator's
:class:`~repro.net.events.EventScheduler`, so pointer chasing across
:class:`~repro.provenance.distributed.DistributedProvenanceStore`\\ s pays
serialized bytes, link-serialized transmission and propagation latency, and
per-node CPU — and is attributed to a distinct ``query_bytes`` /
``query_messages`` category in :class:`~repro.net.stats.NetworkStats`.

Resolution is querier-driven (iterative, DNS style): the asking node expands
its own store for free, then issues one request per remote pointer
dereference.  The responding node returns the *local closure* of the
requested key — every expansion reachable without leaving the node — and the
querier keeps dereferencing the remote pointer inputs those entries name.
On a static topology the reconstructed derivation graph is structurally
identical to the oracle's (asserted in tests via
:meth:`~repro.provenance.graph.DerivationGraph.same_structure`).

Failure semantics make the queries *partial* instead of hanging: every
request schedules a :class:`~repro.net.events.QueryTimeout`; when the
request or its response is lost — downed link, crashed destination — the
timeout fires, the key is reported in ``missing`` and the query completes
with ``complete=False``.  Queries can run ``mode="offline"`` against the
persistent provenance archives, which survive node crashes; the node must
still be up to answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.engine.tuples import Fact, FactKey
from repro.net.address import Address
from repro.net.events import QueryTimeout
from repro.net.message import (
    QueryClosureEntry,
    QueryRequest,
    QueryResponse,
)
from repro.net.stats import latency_bucket
from repro.provenance.distributed import ProvenancePointer
from repro.provenance.graph import DerivationGraph, DerivationNode
from repro.security.rsa import sign, verify

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.simulator import Simulator

#: Default seconds a query waits for one outstanding request before
#: declaring its key missing.  Generous against normal RTTs (link latencies
#: are milliseconds) so only genuine losses — downed links, crashed nodes —
#: time out.
DEFAULT_QUERY_TIMEOUT = 30.0

QUERY_MODES = ("online", "offline")


@dataclass(frozen=True)
class ProvenanceQuery:
    """One traceback question asked *inside* the network.

    ``root`` is the tuple key under investigation, ``at`` the node asking.
    ``mode`` selects the store walked: ``"online"`` uses the live
    distributed pointer tables, ``"offline"`` the persistent provenance
    archives (forensics over state the live network may have forgotten).
    ``condensed`` additionally fetches condensed annotations (paying their
    serialized bytes per response); ``authenticated`` makes every responder
    sign its response and the querier verify it (Section 4.3 applied to the
    query plane).
    """

    root: FactKey
    at: Address
    mode: str = "online"
    condensed: bool = False
    authenticated: bool = False
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in QUERY_MODES:
            raise ValueError(
                f"unknown query mode {self.mode!r}; expected one of {QUERY_MODES}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("query timeout must be positive")


@dataclass
class QueryResult:
    """The answer to one in-network provenance query, with its price tag."""

    query: ProvenanceQuery
    graph: DerivationGraph
    missing: Tuple[FactKey, ...]
    nodes_visited: Tuple[Address, ...]
    #: Remote pointer dereferences attempted (one request each).  The legacy
    #: oracle bills every remote pointer edge; here a response carries the
    #: responding node's whole local closure, so edges into an
    #: already-expanded (key, node) pair are amortized away — this count is
    #: at most the oracle's ``remote_lookups``.
    remote_lookups: int
    messages: int
    bytes: int
    issued_at: float
    completed_at: float
    timeouts: int = 0
    responses_verified: int = 0
    verification_failures: int = 0
    #: Condensed annotation of the root — the querier's own recorded
    #: annotation when it holds one, otherwise the annotation a responder
    #: shipped for the root.  ``None`` when nobody vouches for the key.
    condensed: Optional[object] = None
    #: Per-key condensed annotations fetched over the wire
    #: (``condensed=True`` queries); these are the annotations whose
    #: serialized bytes the responses were billed for.
    annotations: Dict[FactKey, object] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.missing

    @property
    def root(self) -> FactKey:
        return self.query.root

    @property
    def latency(self) -> float:
        """Simulated seconds from issue to the last response (or timeout)."""
        return self.completed_at - self.issued_at

    def as_dict(self) -> Dict[str, object]:
        return {
            "root": self.query.root,
            "at": self.query.at,
            "mode": self.query.mode,
            "complete": self.complete,
            "missing": self.missing,
            "nodes_visited": self.nodes_visited,
            "remote_lookups": self.remote_lookups,
            "messages": self.messages,
            "bytes": self.bytes,
            "latency": self.latency,
            "timeouts": self.timeouts,
        }


@dataclass
class PendingQuery:
    """Querier-side state of one in-flight :class:`ProvenanceQuery`."""

    query_id: int
    query: ProvenanceQuery
    issued_at: float
    graph: DerivationGraph = field(default_factory=DerivationGraph)
    #: (key, node) expansions already merged into the graph.
    seen: Set[Tuple[FactKey, Address]] = field(default_factory=set)
    #: (key, node) dereferences already requested — kept separate from
    #: ``seen`` so the response's own root entry still merges, while
    #: duplicate pointers to the same pair never re-request it.
    requested: Set[Tuple[FactKey, Address]] = field(default_factory=set)
    missing: List[FactKey] = field(default_factory=list)
    nodes_visited: List[Address] = field(default_factory=list)
    #: request_id -> (key, node, its scheduled QueryTimeout).
    outstanding: Dict[int, Tuple[FactKey, Address, QueryTimeout]] = field(
        default_factory=dict
    )
    remote_lookups: int = 0
    messages: int = 0
    bytes: int = 0
    timeouts: int = 0
    responses_verified: int = 0
    verification_failures: int = 0
    condensed: Optional[object] = None
    annotations: Dict[FactKey, object] = field(default_factory=dict)
    completed_at: float = 0.0
    done: bool = False
    #: The service-plane :class:`~repro.net.events.QueryArrival` this query
    #: answers, when the query was issued by the workload handler rather
    #: than directly through the API.  ``_finish`` reports completion back
    #: to the kernel so SLO latency is recorded and closed-loop clients
    #: schedule their next arrival.
    service: Optional[object] = None

    def result(self) -> QueryResult:
        """Snapshot the query's answer (partial until ``done``)."""
        return QueryResult(
            query=self.query,
            graph=self.graph,
            missing=tuple(self.missing),
            nodes_visited=tuple(self.nodes_visited),
            remote_lookups=self.remote_lookups,
            messages=self.messages,
            bytes=self.bytes,
            issued_at=self.issued_at,
            completed_at=self.completed_at,
            timeouts=self.timeouts,
            responses_verified=self.responses_verified,
            verification_failures=self.verification_failures,
            condensed=self.condensed,
            annotations=dict(self.annotations),
        )


class _ArchiveAdapter:
    """Presents an offline provenance archive as a pointer store.

    Archive entries carry the same (rule, antecedents, node) shape as live
    pointers; per-antecedent origins come from the archive's remembered
    remote origins, giving offline traceback the same cross-node walk.
    """

    def __init__(self, archive) -> None:
        self._archive = archive

    def is_base(self, key: FactKey) -> bool:
        return self._archive.is_base(key)

    def knows(self, key: FactKey) -> bool:
        return self._archive.knows(key)

    def pointers(self, key: FactKey) -> Tuple[ProvenancePointer, ...]:
        pointers = []
        for entry in self._archive.entries(key):
            pointers.append(
                ProvenancePointer(
                    output=key,
                    rule_label=entry.rule_label,
                    node=entry.node or self._archive.node,
                    inputs=tuple(
                        (k, self._archive.origin_of(k))
                        for k in entry.antecedent_keys
                    ),
                    timestamp=entry.timestamp,
                )
            )
        return tuple(pointers)


def _local_closure(adapter, node: Address, root: FactKey):
    """Expand *root* at *node* as far as local pointers reach.

    Mirrors the oracle's visit order (preorder, derivation recorded before
    its inputs are expanded) so the querier can replay the entries into a
    structurally identical graph.  Returns ``(entries, missing)``: the
    (key, node) expansions resolvable here, and the keys this node cannot
    vouch for.  Pointer inputs held on *other* nodes are left inside the
    entries for the querier to dereference.
    """
    entries: List[QueryClosureEntry] = []
    missing: List[FactKey] = []
    seen: Set[FactKey] = set()
    stack: List[FactKey] = [root]
    # Explicit stack with reversed pushes keeps preorder without recursion
    # depth limits on long derivation chains.
    while stack:
        key = stack.pop()
        if key in seen:
            continue
        seen.add(key)
        if adapter.is_base(key):
            entries.append(QueryClosureEntry(key=key, node=node, is_base=True))
            continue
        pointers = adapter.pointers(key)
        if not pointers:
            missing.append(key)
            continue
        entries.append(
            QueryClosureEntry(key=key, node=node, is_base=False, pointers=pointers)
        )
        local_inputs: List[FactKey] = []
        for pointer in pointers:
            for input_key, origin in pointer.inputs:
                if (origin or node) == node:
                    local_inputs.append(input_key)
        for input_key in reversed(local_inputs):
            stack.append(input_key)
    return tuple(entries), tuple(missing)


class QueryEngine:
    """Executes provenance queries as events on the simulator's scheduler."""

    def __init__(self, simulator: "Simulator") -> None:
        self.simulator = simulator
        self._queries: Dict[int, PendingQuery] = {}
        self._next_query_id = 0
        self._next_request_id = 0
        #: Sharded backend hook: resolve a pending query living on another
        #: kernel, addressed by the asking node (a response's destination)
        #: and the query id that kernel assigned.  The responder's kernel
        #: uses it to bill the response to the asker at *send* time —
        #: exactly the serial backend's accounting, lost responses included.
        self.resolve_remote = None

    # -- issuing ---------------------------------------------------------------

    def issue(
        self, query: ProvenanceQuery, now: float = 0.0, service=None
    ) -> PendingQuery:
        """Start *query* at simulated instant *now*.

        The querying node expands its own store for free (paying only CPU),
        then one :class:`QueryRequest` ships per remote pointer dereference.
        Drain the scheduler (``run_until_idle``) to let responses, follow-up
        requests and timeouts play out, then read ``pending.result()``.

        *service* is the originating :class:`~repro.net.events.QueryArrival`
        when the query comes from the service plane's workload handler; its
        completion is then reported back through
        ``simulator.service_query_finished``.
        """
        simulator = self.simulator
        engine = simulator.engines.get(query.at)
        if engine is None:
            raise ValueError(f"cannot issue a query at unknown node {query.at!r}")
        if not simulator.node_is_up(query.at):
            raise RuntimeError(f"cannot issue a query at crashed node {query.at!r}")
        if not simulator.config.provenance_mode.maintains_provenance:
            # Without a maintaining mode nothing records pointers — not even
            # into the offline archives — so both query modes would only
            # ever report the root missing.  Fail loudly instead.
            raise ValueError(
                "provenance queries need a provenance-maintaining "
                "configuration (provenance_mode is NONE: the engines record "
                "no pointers to chase, online or archived)"
            )
        if query.mode == "offline" and not simulator.config.keep_offline_provenance:
            raise ValueError(
                "offline queries need keep_offline_provenance=True so nodes "
                "archive their derivations"
            )
        if query.authenticated:
            # Responders sign their answers; configurations that never signed
            # data traffic get keys on demand (deterministically seeded).
            for address in simulator.topology.nodes:
                if not simulator.keystore.has_private_key(address):
                    simulator.keystore.create_keypair(address)

        self._next_query_id += 1
        pending = PendingQuery(
            query_id=self._next_query_id, query=query, issued_at=now
        )
        # Attached before _expand_local: a query resolved entirely from the
        # asker's own store finishes synchronously inside this call, and the
        # service plane must still hear about it.
        pending.service = service
        self._queries[pending.query_id] = pending
        if query.mode == "offline":
            # Retention aging must not pull the evidence out from under an
            # in-flight forensic query: the root stays pinned in the asker's
            # archive until the query completes (_finish releases it).
            engine.offline_provenance.pin_key(query.root)
        simulator.stats.node(query.at).queries_issued += 1
        if query.condensed:
            pending.condensed = self._annotation_for(engine, query.root, query.mode)
        self._expand_local(pending, query.root, now)
        if not pending.outstanding:
            self._finish(pending, simulator.stats.node(query.at).busy_until)
        return pending

    # -- delivery dispatch ------------------------------------------------------

    def deliver(self, message, deliver_at: float) -> None:
        """Entry point for query-plane messages arriving at a live node."""
        if isinstance(message, QueryRequest):
            self._handle_request(message, deliver_at)
        else:
            self._handle_response(message, deliver_at)

    def handle_timeout(self, event: QueryTimeout, at: float) -> None:
        """An outstanding request was never answered: its key goes missing."""
        pending = self._queries.get(event.query_id)
        if pending is None or pending.done:
            return
        entry = pending.outstanding.pop(event.request_id, None)
        if entry is None:
            return  # the response arrived first; the timeout is a no-op
        key, _node, _timeout = entry
        pending.timeouts += 1
        if key not in pending.missing:
            pending.missing.append(key)
        if not pending.outstanding:
            self._finish(pending, at)

    # -- responder side ----------------------------------------------------------

    def _handle_request(self, request: QueryRequest, at: float) -> None:
        simulator = self.simulator
        engine = simulator.engines.get(request.destination)
        if engine is None:
            return
        entries, missing, annotation, lookups = self._closure(
            engine,
            request.destination,
            request.key,
            request.mode,
            request.condensed,
            at,
        )
        annotation_bytes = (
            annotation.serialized_size() if annotation is not None else 0
        )
        response = QueryResponse(
            source=request.destination,
            destination=request.source,
            query_id=request.query_id,
            request_id=request.request_id,
            key=request.key,
            entries=entries,
            missing=missing,
            annotation=annotation,
            annotation_bytes=annotation_bytes,
        )
        signing_cost = 0.0
        if request.authenticated:
            if not simulator.keystore.has_private_key(request.destination):
                # Configurations that never sign data traffic create keys on
                # demand.  All of them, in topology order: key material draws
                # from one seeded RNG, so every kernel of a sharded run (and
                # the serial backend, which does the same at issue time)
                # derives bit-identical keys.
                simulator.keystore.create_all(simulator.topology.nodes)
            signature = sign(
                response.signed_payload(),
                simulator.keystore.private_key(request.destination),
            )
            # replace() re-runs __post_init__, folding the signature bytes
            # into the wire size and the security attribution.
            response = replace(response, signature=signature)
            signing_cost = simulator.cost_model.seconds_per_signature
        cpu = (
            simulator.cost_model.query_cpu_seconds(lookups, response.size_bytes())
            + signing_cost
        )
        send_time = self._charge(request.destination, at, cpu)
        self._ship(response.query_id, request.destination, response, send_time)

    # -- querier side -------------------------------------------------------------

    def _handle_response(self, response: QueryResponse, at: float) -> None:
        simulator = self.simulator
        pending = self._queries.get(response.query_id)
        if pending is None or pending.done:
            return
        if response.request_id not in pending.outstanding:
            return  # already timed out; the answer arrived too late
        _key, _node, timeout = pending.outstanding.pop(response.request_id)
        # The answer is here: its timeout must neither fire nor burn an
        # event-budget slot when the scheduler reaches it.
        timeout.cancelled = True
        verification_cost = 0.0
        if pending.query.authenticated:
            verification_cost = simulator.cost_model.seconds_per_verification
            ok = response.signature is not None and verify(
                response.signed_payload(),
                response.signature,
                simulator.keystore.public_key(response.source),
            )
            if ok:
                pending.responses_verified += 1
            else:
                # A spoofed or corrupted answer is discarded: the key stays
                # unresolved rather than poisoning the graph.
                pending.verification_failures += 1
                if response.key not in pending.missing:
                    pending.missing.append(response.key)
                self._charge(pending.query.at, at, verification_cost)
                if not pending.outstanding:
                    self._finish(
                        pending,
                        simulator.stats.node(pending.query.at).busy_until,
                    )
                return
        cpu = (
            simulator.cost_model.query_cpu_seconds(0, response.size_bytes())
            + verification_cost
        )
        now = self._charge(pending.query.at, at, cpu)
        if response.source not in pending.nodes_visited:
            pending.nodes_visited.append(response.source)
        if response.annotation is not None:
            # The annotation the responder computed, shipped and billed for.
            pending.annotations[response.key] = response.annotation
            if pending.condensed is None and response.key == pending.query.root:
                pending.condensed = response.annotation
        self._merge_closure(
            pending, response.source, response.entries, response.missing, now
        )
        if not pending.outstanding:
            self._finish(
                pending, simulator.stats.node(pending.query.at).busy_until
            )

    def _expand_local(self, pending: PendingQuery, key: FactKey, now: float) -> None:
        """Resolve *key* at the querying node itself: CPU, but no messages."""
        simulator = self.simulator
        at_node = pending.query.at
        engine = simulator.engines[at_node]
        entries, missing, _annotation, lookups = self._closure(
            engine,
            at_node,
            key,
            pending.query.mode,
            pending.query.condensed,
            now,
        )
        cpu = simulator.cost_model.query_cpu_seconds(lookups, 0)
        now = self._charge(at_node, now, cpu)
        if at_node not in pending.nodes_visited:
            pending.nodes_visited.append(at_node)
        self._merge_closure(pending, at_node, entries, missing, now)

    def _merge_closure(
        self,
        pending: PendingQuery,
        node: Address,
        entries,
        missing,
        now: float,
    ) -> None:
        """Replay closure *entries* into the graph; dereference remote inputs."""
        graph = pending.graph
        for entry in entries:
            pair = (entry.key, entry.node)
            if pair in pending.seen:
                continue
            pending.seen.add(pair)
            graph.add_tuple(DerivationNode(key=entry.key, location=entry.node))
            for pointer in entry.pointers:
                graph.add_derivation(
                    output=Fact(relation=entry.key[0], values=entry.key[1]),
                    rule_label=pointer.rule_label,
                    antecedents=[
                        Fact(relation=k[0], values=k[1])
                        for k, _ in pointer.inputs
                    ],
                    location=pointer.node,
                    timestamp=pointer.timestamp,
                )
                for input_key, origin in pointer.inputs:
                    next_node = origin or entry.node
                    if next_node != entry.node:
                        self._dereference(pending, input_key, next_node, now)
        for key in missing:
            pair = (key, node)
            if pair in pending.seen:
                continue
            pending.seen.add(pair)
            graph.add_tuple(DerivationNode(key=key, location=node))
            if key not in pending.missing:
                pending.missing.append(key)

    def _dereference(
        self, pending: PendingQuery, key: FactKey, node: Address, now: float
    ) -> None:
        """Follow one remote pointer edge: locally when it points home,
        otherwise as a paid request."""
        if (key, node) in pending.seen or (key, node) in pending.requested:
            return
        if node == pending.query.at:
            # The pointer leads back to the asker: resolved in memory.
            self._expand_local(pending, key, now)
            return
        pending.requested.add((key, node))
        pending.remote_lookups += 1
        simulator = self.simulator
        self._next_request_id += 1
        request = QueryRequest(
            source=pending.query.at,
            destination=node,
            key=key,
            query_id=pending.query_id,
            request_id=self._next_request_id,
            mode=pending.query.mode,
            condensed=pending.query.condensed,
            authenticated=pending.query.authenticated,
        )
        send_time = self._charge(
            pending.query.at,
            now,
            simulator.cost_model.query_cpu_seconds(0, request.size_bytes()),
        )
        self._ship(pending.query_id, pending.query.at, request, send_time)
        timeout_after = pending.query.timeout or simulator.query_timeout
        timeout = QueryTimeout(
            time=send_time + timeout_after,
            query_id=pending.query_id,
            request_id=request.request_id,
        )
        pending.outstanding[request.request_id] = (key, node, timeout)
        simulator.scheduler.schedule(timeout)

    def _finish(self, pending: PendingQuery, at_time: float) -> None:
        pending.done = True
        pending.completed_at = max(at_time, pending.issued_at)
        if pending.query.mode == "offline":
            engine = self.simulator.engines.get(pending.query.at)
            if engine is not None:
                engine.offline_provenance.release_key(pending.query.root)
        # The engine's own bookkeeping for the query is over; dropping the
        # entry keeps memory flat over many queries and makes any late
        # response a true no-op instead of mutating a snapshot result.
        self._queries.pop(pending.query_id, None)
        if pending.service is not None:
            # A pending query always finishes on the kernel hosting its
            # asker, so the service plane's latency accounting and
            # closed-loop follow-up land on the right shard.
            self.simulator.service_query_finished(pending)

    # -- shared helpers -----------------------------------------------------------

    def _closure(
        self,
        engine,
        node: Address,
        key: FactKey,
        mode: str,
        condensed: bool,
        now: float,
    ):
        """Resolve the local closure of *key* at *node*, through the node's
        result cache when the service plane armed one.

        Returns ``(entries, missing, annotation, lookups)`` where *lookups*
        is the store-lookup count to bill CPU for: the full walk on a miss,
        a single memo probe on a hit — caching measurably cheapens the
        query path.  The memo key is ``(key, mode, condensed)`` and the
        entry is guarded by the engine's ``provenance_epoch``, which bumps
        on every provenance-store mutation, so a hit is always structurally
        identical to a cold walk at the same instant.
        """
        cache = self.simulator.query_cache_for(node)
        if cache is None:
            adapter = self._adapter(engine, mode)
            entries, missing = _local_closure(adapter, node, key)
            annotation = (
                self._annotation_for(engine, key, mode) if condensed else None
            )
            return entries, missing, annotation, len(entries) + len(missing)
        stats = self.simulator.stats.node(node)
        cache_key = (key, mode, condensed)
        epoch = engine.provenance_epoch
        hit, invalidated = cache.lookup(cache_key, epoch, now)
        if invalidated:
            stats.cache_invalidations += 1
        if hit is not None:
            (entries, missing, annotation), age = hit
            stats.cache_hits += 1
            bucket = latency_bucket(age)
            stats.cache_staleness_buckets[bucket] = (
                stats.cache_staleness_buckets.get(bucket, 0) + 1
            )
            return entries, missing, annotation, 1
        adapter = self._adapter(engine, mode)
        entries, missing = _local_closure(adapter, node, key)
        annotation = (
            self._annotation_for(engine, key, mode) if condensed else None
        )
        stats.cache_misses += 1
        stats.cache_invalidations += cache.store(
            cache_key, (entries, missing, annotation), epoch, now
        )
        return entries, missing, annotation, len(entries) + len(missing)

    def _adapter(self, engine, mode: str):
        if mode == "offline":
            return _ArchiveAdapter(engine.offline_provenance)
        return engine.distributed_provenance

    def _annotation_for(self, engine, key, mode: str):
        """The *recorded* condensed annotation of *key* in this query's store.

        Offline queries read the archived annotation — the one that survives
        a crash, matching the store the pointer walk itself uses — while
        online queries read the live local store.  ``None`` when nothing was
        recorded: the identity fallback for unknown keys must not masquerade
        as provenance.
        """
        if mode == "offline":
            for entry in engine.offline_provenance.entries(key):
                if entry.annotation is not None:
                    return entry.annotation
            return None
        if engine.local_provenance.knows(key):
            return engine.local_provenance.annotation(key)
        return None

    def _charge(self, address: Address, start_floor: float, cpu: float) -> float:
        """Advance *address*'s CPU clock by *cpu* seconds; return its new busy time."""
        stats = self.simulator.stats.node(address)
        start = max(start_floor, stats.busy_until)
        stats.cpu_seconds += cpu
        stats.busy_until = start + cpu
        return stats.busy_until

    def _ship(self, query_id: int, source: Address, message, send_time: float) -> None:
        """Put one query-plane message on the wire, charging the usual costs
        plus the per-query attribution to the asking node.

        Query traffic travels between arbitrary node pairs, so it is routed
        hop-by-hop over the currently-live topology (a partition loses it).
        """
        simulator = self.simulator
        node_stats = simulator.stats.node(source)
        simulator.ship_routed(
            source, message.destination, message, send_time, node_stats
        )
        size = message.size_bytes()
        if isinstance(message, QueryResponse):
            asker = message.destination
            if self.resolve_remote is not None:
                # Query ids are only unique per kernel, and a response's
                # rightful pending query lives at the kernel hosting the
                # *asker* (its destination) — never this one's same-id
                # entry, which may belong to an unrelated concurrent query.
                # The coordinator resolves by asker, which routes back to
                # this kernel when the asker is local, so the response's
                # price lands on the same books the serial backend keeps.
                pending = self.resolve_remote(asker, query_id)
                known = pending is not None
            else:
                # No resolver (serial backend, or a process-mode worker that
                # cannot reach other kernels' state): a same-id local pending
                # only counts when it really belongs to this asker.  For a
                # foreign asker the charge is recorded sight unseen — the
                # serial backend would only skip it when the query had
                # already finished, which takes a >timeout link backlog
                # before the response even ships.
                candidate = self._queries.get(query_id)
                pending = (
                    candidate
                    if candidate is not None and candidate.query.at == asker
                    else None
                )
                known = pending is not None or not simulator.hosts(asker)
        else:
            asker = message.source
            pending = self._queries.get(query_id)
            known = pending is not None
        if pending is not None:
            pending.messages += 1
            pending.bytes += size
        if known:
            if simulator.hosts(asker):
                simulator.stats.node(asker).query_bytes_charged += size
            else:
                # A query message passing through a kernel that does not host
                # the asker must not fabricate a phantom NodeStats entry on
                # this shard's books; the charge is recorded as a receipt the
                # sharded coordinator settles into the asker's merged stats
                # at barrier time.
                receipts = simulator.query_receipts
                receipts[asker] = receipts.get(asker, 0) + size
