"""Network links.

A :class:`Link` is a unidirectional edge of the simulated topology with a
cost (used by the Best-Path query), a propagation latency and a transmission
bandwidth (used by the simulator to compute message delivery times).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.address import Address

#: Default propagation latency between co-located processes (seconds).
DEFAULT_LATENCY = 0.001
#: Default link bandwidth in bytes per second (100 Mbit/s).
DEFAULT_BANDWIDTH = 100_000_000 / 8


@dataclass(frozen=True)
class Link:
    """A unidirectional link ``source -> destination``."""

    source: Address
    destination: Address
    cost: float = 1.0
    latency: float = DEFAULT_LATENCY
    bandwidth: float = DEFAULT_BANDWIDTH

    def transmission_delay(self, size_bytes: int) -> float:
        """Time to push *size_bytes* onto the wire plus propagation latency."""
        if self.bandwidth <= 0:
            return self.latency
        return self.latency + size_bytes / self.bandwidth

    def reversed(self) -> "Link":
        """The same link in the opposite direction."""
        return Link(
            source=self.destination,
            destination=self.source,
            cost=self.cost,
            latency=self.latency,
            bandwidth=self.bandwidth,
        )

    def __str__(self) -> str:
        return f"link({self.source}, {self.destination}, cost={self.cost})"
