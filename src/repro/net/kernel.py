"""The backend-agnostic simulation kernel.

A :class:`SimulationKernel` is the discrete-event core every execution
backend shares: the typed event loop, message routing, per-link transmission
serialization, delivery bookkeeping, dynamic-network state (failed links,
crashed nodes, remembered base facts) and the per-node CPU cost accounting.
It hosts the :class:`~repro.engine.node_engine.NodeEngine` of a *subset* of
the topology's nodes:

* the **serial backend** (:class:`~repro.net.simulator.Simulator`, and the
  facade's default) is one kernel hosting every node;
* the **sharded backend** (:mod:`repro.net.sharding`) runs one kernel per
  shard — deliveries whose destination lives on another shard are not
  scheduled locally but handed to an export sink, exchanged at conservative
  lookahead barriers, and merged into the destination kernel's queue.

Two properties make the shards' independent queues replay the exact serial
schedule:

* event tie-breaking is *content-based* (see :mod:`repro.net.events`), so a
  delivery's position among same-instant events does not depend on which
  kernel scheduled it or when;
* message sequence numbers are **per sending node** (not per kernel), so the
  numbering a node's messages carry is identical no matter how the nodes are
  partitioned.

Cross-kernel determinism of the shared dynamic state works by broadcasting
control events (link failures/recoveries, crashes/recoveries, refresh
rounds) to every kernel: each kernel updates the cheap global-state sets,
while only the kernel hosting the affected node performs the stateful part
(retraction cascades, engine resets, re-injection) and counts the event —
so merged event totals match the serial backend's exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dataclass_replace
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.datalog.planner import CompiledProgram
from repro.engine.node_engine import (
    EngineConfig,
    NodeEngine,
    OutgoingFact,
    ProcessingReport,
    collect_facts,
    facts_by_node,
    group_outgoing,
)
from repro.engine.tuples import Fact, FactKey, as_fact_key
from repro.net.address import Address
from repro.net.events import (
    EventScheduler,
    FactInjection,
    FactRetraction,
    LinkDown,
    LinkUp,
    MessageDelivery,
    NodeCrash,
    NodeRecover,
    QueryArrival,
    QueryTimeout,
    RefreshHorizon,
    RefreshTimerFire,
    SimulationEvent,
    SoftStateRefresh,
)
from repro.net.link import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, Link
from repro.net.message import (
    AntiDelta,
    BatchItem,
    Message,
    MessageBatch,
    QueryRequest,
    QueryResponse,
)
from repro.net.query import (
    DEFAULT_QUERY_TIMEOUT,
    PendingQuery,
    ProvenanceQuery,
    QueryEngine,
    QueryResult,
)
from repro.net.stats import NetworkStats, NodeStats, WireMessage, latency_bucket
from repro.net.timers import TimerWheel
from repro.net.topology import Topology
from repro.security.keystore import KeyStore
from repro.security.principal import PrincipalRegistry
from repro.service.cache import CacheConfig, ClosureCache
from repro.service.ratelimit import AdmissionControl, TokenBucket
from repro.service.workload import QueryWorkload, next_arrival


@dataclass(frozen=True)
class CostModel:
    """Converts a node's operation counters into simulated CPU seconds.

    The constants model a 2008-era interpreted dataflow engine (P2) running
    many processes on one machine.  Absolute values are not meant to match
    the paper's testbed; what matters for the reproduction is the *structure*:
    per-tuple relational work scales with tuple size, signing adds a fixed
    per-tuple cost, verification is much cheaper than signing (small public
    exponent), and provenance adds per-annotation plus per-byte costs.

    Every term is linear in one report counter with no constant per-call
    overhead, so accounting one merged batch-level report charges exactly the
    same CPU time as accounting its per-tuple parts separately.
    """

    seconds_per_fact_received: float = 0.8e-3
    seconds_per_rule_firing: float = 1.2e-3
    seconds_per_fact_derived: float = 0.8e-3
    seconds_per_fact_inserted: float = 0.4e-3
    seconds_per_fact_retracted: float = 0.4e-3
    #: Support-polynomial prune that left a survivor: cheaper than a
    #: retraction (no table delete, no provenance invalidation).
    seconds_per_rederivation: float = 0.2e-3
    seconds_per_payload_byte: float = 3.0e-5
    seconds_per_signature: float = 4.0e-3
    seconds_per_verification: float = 0.6e-3
    seconds_per_provenance_annotation: float = 1.0e-3
    seconds_per_provenance_byte: float = 2.5e-5
    #: Query-plane work: one pointer-table lookup while answering (or
    #: locally expanding) a provenance query, and one serialized query
    #: payload byte built or parsed.
    seconds_per_query_lookup: float = 0.5e-3
    seconds_per_query_byte: float = 3.0e-5

    def query_cpu_seconds(self, lookups: int, payload_bytes: int) -> float:
        """Simulated CPU time for query-plane work (lookups + serialization)."""
        return (
            lookups * self.seconds_per_query_lookup
            + payload_bytes * self.seconds_per_query_byte
        )

    def cpu_seconds(self, report: ProcessingReport) -> float:
        """Simulated CPU time for the work summarised in *report*."""
        return (
            report.facts_received * self.seconds_per_fact_received
            + report.rule_firings * self.seconds_per_rule_firing
            + report.facts_derived * self.seconds_per_fact_derived
            + report.facts_inserted * self.seconds_per_fact_inserted
            + report.facts_retracted * self.seconds_per_fact_retracted
            + report.rederivations * self.seconds_per_rederivation
            + report.payload_bytes_processed * self.seconds_per_payload_byte
            + report.signatures_created * self.seconds_per_signature
            + report.facts_verified * self.seconds_per_verification
            + report.provenance_annotations * self.seconds_per_provenance_annotation
            + report.provenance_bytes_computed * self.seconds_per_provenance_byte
            + report.provenance_signatures * self.seconds_per_signature
            + report.provenance_verifications * self.seconds_per_verification
        )


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    stats: NetworkStats
    engines: Dict[Address, NodeEngine]
    converged: bool
    events_processed: int

    def facts(self, relation: str) -> Dict[Address, Tuple[Fact, ...]]:
        """All stored facts of *relation*, per node."""
        return facts_by_node(self.engines, relation)

    def all_facts(self, relation: str) -> Tuple[Fact, ...]:
        return collect_facts(self.engines, relation)


def shape_link_facts(
    topology: Topology, relation: str, arity: int
) -> Dict[Address, List[Fact]]:
    """The link base tuples implied by *topology*, shaped to *arity*.

    Programs differ in their link arity — reachability uses ``link(@S, D)``,
    Best-Path ``link(@S, D, C)`` — so the caller resolves the arity from its
    compiled catalog; anything but 2 carries the cost column.  Shared by the
    serial kernel and the sharded coordinator so the default workload cannot
    drift between backends.
    """
    per_node: Dict[Address, List[Fact]] = {address: [] for address in topology.nodes}
    for link in topology.links:
        values = (
            (link.source, link.destination)
            if arity == 2
            else (link.source, link.destination, link.cost)
        )
        per_node[link.source].append(Fact(relation=relation, values=values))
    return per_node


class SimulationKernel:
    """Runs one program over (a shard of) one topology under one configuration."""

    def __init__(
        self,
        topology: Topology,
        compiled: CompiledProgram,
        config: EngineConfig,
        cost_model: Optional[CostModel] = None,
        keystore: Optional[KeyStore] = None,
        registry: Optional[PrincipalRegistry] = None,
        key_bits: int = 256,
        max_events: int = 5_000_000,
        default_latency: float = DEFAULT_LATENCY,
        default_bandwidth: float = DEFAULT_BANDWIDTH,
        batching: bool = True,
        batch_receive: bool = True,
        link_relation: str = "link",
        query_timeout: float = DEFAULT_QUERY_TIMEOUT,
        admission: Optional[AdmissionControl] = None,
        query_cache: Optional[CacheConfig] = None,
        refresh_mode: str = "rounds",
        refresh_interval: float = 10.0,
        refresh_rate: float = 0.0,
        refresh_burst: float = 1.0,
        hosted: Optional[Iterable[Address]] = None,
        primary: bool = True,
    ) -> None:
        if refresh_mode not in ("rounds", "wheel"):
            raise ValueError(
                f"unknown refresh_mode {refresh_mode!r}; expected 'rounds' or 'wheel'"
            )
        if refresh_mode == "wheel" and config.refresh_propagation == 0.0:
            # The wheel plane re-stamps continuously; waves propagate past
            # the owner once the downstream copy is half an interval old, so
            # derived state is repaired well before a full TTL elapses.
            config = dataclass_replace(
                config, refresh_propagation=refresh_interval / 2.0
            )
        self.topology = topology
        self.compiled = compiled
        self.config = config
        self.cost_model = cost_model or CostModel()
        self.max_events = max_events
        self.default_latency = default_latency
        self.default_bandwidth = default_bandwidth
        #: When True (the default, matching real P2), all tuples bound for
        #: one destination in one delta round ship as a single MessageBatch
        #: under one message header.  When False, every tuple pays its own
        #: header (the paper's Figure 4 accounting).
        self.batching = batching
        #: When True (the default), a delivered batch drains through one
        #: ``NodeEngine.receive_batch`` call — one ProcessingResult/report and
        #: one warm-up per incoming message instead of N per-tuple calls.
        #: Tuples are still admitted and fixpointed strictly in arrival
        #: order, so derived facts and stats attribution are identical to the
        #: per-tuple path.
        self.batch_receive = batch_receive
        #: Name of the base relation whose tuples mirror the topology's
        #: links; LinkDown retraction and recovery re-injection key off it.
        self.link_relation = link_relation
        #: Seconds an in-network provenance query waits for one outstanding
        #: request before reporting the key missing (lost request/response).
        self.query_timeout = query_timeout
        #: Service-plane configuration (repro.service): per-node token-bucket
        #: admission control and the per-node query-result cache.  ``None``
        #: disables the feature; buckets and caches are created lazily per
        #: hosted node, on simulated time only.
        self.admission = admission
        self.query_cache = query_cache
        self._admission_buckets: Dict[Address, TokenBucket] = {}
        self._query_caches: Dict[Address, ClosureCache] = {}
        #: Timer-wheel refresh plane (``refresh_mode="wheel"``): per-tuple
        #: refresh timers at each hosted owner live in hierarchical timer
        #: wheels (never in the event heap — an idle network stays idle) and
        #: are materialized lazily up to ``_wheel_horizon``, the furthest
        #: horizon a :class:`RefreshHorizon` broadcast has announced.
        #: ``_refresh_horizon`` is the emission guard on the *driving* side:
        #: :meth:`schedule` broadcasts a new horizon only when an external
        #: event lands strictly beyond the last one.
        self.refresh_mode = refresh_mode
        self.refresh_interval = refresh_interval
        self.refresh_rate = refresh_rate
        self.refresh_burst = refresh_burst
        self._refresh_horizon = 0.0
        self._wheel_horizon = 0.0
        self._wheels: Dict[Address, TimerWheel] = {}
        #: Coalesced due timers: ``(address, fire time) -> ordered keys``.
        #: One :class:`RefreshTimerFire` event exists per bucket, so its
        #: content rank ``(address)`` is unique at any instant.
        self._due_refresh: Dict[Tuple[Address, float], Dict[FactKey, None]] = {}
        #: Per-node refresh-wave token buckets (``refresh_rate`` > 0 only):
        #: repair traffic is a bounded trickle, not synchronized spikes.
        self._refresh_buckets: Dict[Address, TokenBucket] = {}
        #: The nodes whose engines this kernel hosts (all of them for the
        #: serial backend, one shard's worth for the sharded backend).
        self.hosted: Tuple[Address, ...] = (
            tuple(topology.nodes) if hosted is None else tuple(hosted)
        )
        self._hosted_set: Set[Address] = set(self.hosted)
        #: Exactly one kernel per run is primary: it owns (counts) the
        #: broadcast events that belong to no particular node, so merged
        #: event totals equal the serial backend's.
        self.primary = primary

        self.registry = registry or PrincipalRegistry()
        #: Deterministic keys for *every* node regardless of hosting: key
        #: creation draws from one seeded RNG in topology order, so each
        #: shard kernel derives the identical key material the serial
        #: backend would, and cross-shard signatures verify bit-for-bit.
        self.keystore = keystore or KeyStore(key_bits=key_bits, seed=7)
        if config.says_mode.requires_signature:
            self.keystore.create_all(topology.nodes)

        self.engines: Dict[Address, NodeEngine] = {}
        for address in topology.nodes:
            self.registry.register(address)
            if address in self._hosted_set:
                self.engines[address] = NodeEngine(
                    address=address,
                    compiled=compiled,
                    config=config,
                    keystore=self.keystore,
                    registry=self.registry,
                )

        self.stats = NetworkStats()
        self.scheduler = EventScheduler()
        self._events_processed = 0
        #: Schedule count for broadcast copies this kernel does not own;
        #: subtracted when per-kernel ``events_scheduled`` totals merge.
        #: ``_uncounted_ids`` marks the not-yet-dispatched copies themselves
        #: (by identity — the scheduler holds them until they fire).
        self._uncounted_scheduled = 0
        self._uncounted_ids: Set[int] = set()
        #: Per sending node message sequence counters.  Identical runs number
        #: identically, and — because the counter follows the *node*, not the
        #: kernel — so do runs partitioned across any number of shards.
        self._sequences: Dict[Address, int] = {}
        #: Stamp counter ordering externally scheduled control events; the
        #: sharded coordinator assigns these globally instead.
        self._control_stamp = 0
        #: Per directed link: the time its wire is busy until.  Transmissions
        #: on one link serialize; a message starts only after the previous
        #: one has left the sender's interface.
        self._link_busy_until: Dict[Tuple[Address, Address], float] = {}
        #: Dynamic network state: directed links currently failed and nodes
        #: currently crashed.  Consulted at ship / delivery / injection time.
        #: Replicated in every kernel via control-event broadcast.
        self._down_links: set = set()
        self._down_nodes: set = set()
        #: Base facts each node has asserted (for recovery re-injection and
        #: soft-state refresh rounds); retraction removes entries.
        self._base_facts: Dict[Address, Dict[FactKey, Fact]] = {}
        #: Link tuples retracted by LinkDown, re-injected by a bare LinkUp.
        self._failed_link_facts: Dict[Tuple[Address, Address], Tuple[Fact, ...]] = {}
        #: Export sink for deliveries destined to a node another kernel
        #: hosts: ``(deliver_at, message)`` pairs the sharded coordinator
        #: collects at window barriers (and when priming a drain — queries
        #: issued *between* drains ship their first cross-shard requests
        #: outside any window).  ``None`` under the serial backend, where
        #: every destination is hosted locally; the sharded backend enables
        #: it permanently via :meth:`enable_exports`.
        self._export_sink: Optional[List[Tuple[float, WireMessage]]] = None
        #: Bytes of query-plane traffic charged on behalf of askers this
        #: kernel does not host (their responses passed through here on the
        #: way back).  Each kernel's stats book stays strictly local —
        #: ``stats.nodes`` only ever holds hosted nodes — and the sharded
        #: coordinator settles these receipts into the asker's merged
        #: :class:`NodeStats` at barrier time.  Always empty under the
        #: serial backend (every asker is hosted).
        self.query_receipts: Dict[Address, int] = {}

        #: The in-network provenance query plane (repro.net.query): queries
        #: ride the same scheduler and pay the same wire costs as data.
        self.queries = QueryEngine(self)

        self._handlers = self._build_handlers()

    def _build_handlers(self) -> Dict[type, Callable]:
        return {
            MessageDelivery: self._handle_delivery,
            LinkDown: self._handle_link_down,
            LinkUp: self._handle_link_up,
            NodeCrash: self._handle_node_crash,
            NodeRecover: self._handle_node_recover,
            FactInjection: self._handle_injection,
            FactRetraction: self._handle_retraction,
            SoftStateRefresh: self._handle_refresh,
            RefreshHorizon: self._handle_refresh_horizon,
            RefreshTimerFire: self._handle_refresh_fire,
            QueryTimeout: self._handle_query_timeout,
            QueryArrival: self._handle_query_arrival,
        }

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Ship a kernel across a process boundary (sharded worker results).

        The compiled program carries unpicklable cached closures and is
        dropped — the receiver reattaches its own identical compilation via
        :meth:`attach_program` — as is the handler dispatch table (bound
        methods, rebuilt on restore).  Kernels travel at barriers or at
        completion, when their event queues are drained or hold only plain
        typed events, so everything else is data.
        """
        state = self.__dict__.copy()
        state["compiled"] = None
        state["_handlers"] = None
        state["_export_sink"] = None
        # Identity-based bookkeeping cannot cross processes; kernels only
        # travel when no unowned broadcast copy is pending.
        state["_uncounted_ids"] = set()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._handlers = self._build_handlers()

    def attach_program(self, compiled: CompiledProgram) -> None:
        """Reattach the compiled program to this kernel and its engines."""
        self.compiled = compiled
        for engine in self.engines.values():
            engine.attach_program(compiled)

    # -- base facts -------------------------------------------------------------

    def link_facts(self) -> Dict[Address, List[Fact]]:
        """The link base tuples implied by the topology, shaped for the program.

        The compiled catalog decides whether the default workload carries
        the cost column (see :func:`shape_link_facts`); programs that never
        mention the link relation get the full ``link(@S, D, C)`` shape.
        """
        relation = self.link_relation
        # Every engine compiles the same program; any one catalog will do.
        engine = next(iter(self.engines.values()), None)
        arity = 3
        if engine is not None and relation in engine.database.catalog:
            arity = engine.database.catalog.schema(relation).arity
        return shape_link_facts(self.topology, relation, arity)

    def live_base_facts(self, address: Address) -> Tuple[Fact, ...]:
        """The node's remembered base tuples, minus links currently down."""
        remembered = self._base_facts.get(address)
        if not remembered:
            return ()
        return tuple(
            fact
            for fact in remembered.values()
            if not (
                fact.relation == self.link_relation
                and len(fact.values) >= 2
                and (fact.values[0], fact.values[1]) in self._down_links
            )
        )

    # -- dynamic state ----------------------------------------------------------

    def link_is_up(self, source: Address, destination: Address) -> bool:
        return (source, destination) not in self._down_links

    def node_is_up(self, address: Address) -> bool:
        return address not in self._down_nodes

    def hosts(self, address: Address) -> bool:
        """True when this kernel hosts *address*'s engine."""
        return address in self._hosted_set

    # -- running ----------------------------------------------------------------

    def schedule(self, event: SimulationEvent) -> None:
        """Queue a typed event for the next :meth:`run_until_idle` drain.

        Control events receive their ordering stamp here, in call order —
        the order the driving code (scenario scripts, tests, ``run``)
        scheduled them, which is identical under every backend.

        Under ``refresh_mode="wheel"`` an external event landing strictly
        beyond the previous refresh horizon first broadcasts a
        :class:`RefreshHorizon` (at the *old* horizon, so due timers
        materialize at their natural deadlines, not bunched at the new
        event's instant) — the lazy-materialization trigger that lets
        per-tuple timers stay out of the event heap.
        """
        if (
            self.refresh_mode == "wheel"
            and event.time > self._refresh_horizon
            and not isinstance(event, RefreshHorizon)
        ):
            previous = self._refresh_horizon
            self._refresh_horizon = event.time
            self._control_stamp += 1
            self.scheduler.schedule(
                RefreshHorizon(time=previous, horizon=event.time),
                stamp=self._control_stamp,
            )
        self._control_stamp += 1
        self.scheduler.schedule(event, stamp=self._control_stamp)

    def schedule_stamped(self, event: SimulationEvent, stamp: int, owned: bool) -> None:
        """Queue a control event stamped by the sharded coordinator.

        *owned* marks the one kernel that counts the event (the shard
        hosting the affected node, or the primary kernel for node-less
        broadcasts); the other kernels process their copy for its
        global-state side effects without it appearing in event totals.
        """
        if not owned:
            self._uncounted_ids.add(id(event))
            self._uncounted_scheduled += 1
        self.scheduler.schedule(event, stamp=stamp)

    def run_until_idle(self) -> bool:
        """Dispatch scheduled events until none remain (a distributed fixpoint).

        Returns False when the cumulative ``max_events`` budget ran out first.
        """
        while self.scheduler:
            if self._events_processed >= self.max_events:
                return False
            self._dispatch(self.scheduler.pop())
        self.settle_retractions()
        return True

    def settle_retractions(self) -> None:
        """Quiescence bookkeeping: drop every engine's dead-base marks.

        Runs when a drain reaches the distributed fixpoint (never on budget
        exhaustion — events may still be in flight then).  The sharded
        coordinator triggers the same call in every shard kernel when *its*
        drain converges, keeping the two backends in lockstep.
        """
        for engine in self.engines.values():
            engine.settle_retractions()

    def enable_exports(self) -> None:
        """Mark this kernel as one shard of many: deliveries to non-hosted
        destinations accumulate for the coordinator instead of being
        scheduled (and dropped) locally.  Permanent — covers sends made
        between windows too, e.g. a query issued after a drain."""
        if self._export_sink is None:
            self._export_sink = []

    def take_exports(self) -> List[Tuple[float, WireMessage]]:
        """Drain the accumulated cross-shard deliveries."""
        if not self._export_sink:
            return []
        exported, self._export_sink = self._export_sink, []
        return exported

    def run_window(
        self,
        horizon: float,
        imports: Iterable[Tuple[float, WireMessage]] = (),
        lookahead: Optional[float] = None,
    ) -> Tuple[List[Tuple[float, WireMessage]], Optional[float], bool, Optional[float]]:
        """Process every local event strictly before *horizon*.

        *imports* are cross-shard deliveries the coordinator collected from
        the other kernels at the previous barrier; they merge into the local
        queue in content-rank order before the window runs.

        *lookahead* (the pipelined coordinator's conservative window width
        ``W``) arms the **export self-cap**: once this window exports a
        delivery due at ``d``, the effective horizon tightens to
        ``min(horizon, d + W)``.  Any cross-shard consequence of that export
        can reach back here no earlier than ``d + W`` (one delivery plus the
        minimum link latency), so events before the cap are safe to run —
        but running past it could overtake the feedback loop.  The cap is
        always at least ``current event time + W``, so it never invalidates
        work already done.  Strict-barrier callers omit *lookahead* and get
        the exact pre-existing behavior.

        Returns the deliveries this window exported for other kernels, the
        timestamp of the next local event (``None`` when idle), False when
        the event budget ran out mid-window, and the timestamp of the last
        event actually dispatched (``None`` for an empty window) — the
        coordinator's measure of how many window-widths a lease covered.
        """
        self.enable_exports()
        for deliver_at, message in imports:
            self.scheduler.schedule(MessageDelivery(time=deliver_at, message=message))
        within_budget = True
        last_time: Optional[float] = None
        effective = horizon
        sink = self._export_sink
        seen = 0
        if lookahead is not None:
            # Exports already pending (sent between windows) cap the lease too.
            for deliver_at, _ in sink:
                cap = deliver_at + lookahead
                if cap < effective:
                    effective = cap
            seen = len(sink)
        while True:
            next_time = self.scheduler.peek_time()
            if next_time is None or next_time >= effective:
                break
            if self._events_processed >= self.max_events:
                within_budget = False
                break
            event = self.scheduler.pop()
            last_time = event.time
            self._dispatch(event)
            if lookahead is not None:
                while seen < len(sink):
                    cap = sink[seen][0] + lookahead
                    if cap < effective:
                        effective = cap
                    seen += 1
        return self.take_exports(), self.scheduler.peek_time(), within_budget, last_time

    def _dispatch(self, event: SimulationEvent) -> None:
        if self._uncounted_ids:
            if id(event) in self._uncounted_ids:
                self._uncounted_ids.discard(id(event))
            else:
                self._events_processed += 1
        else:
            self._events_processed += 1
        handler = self._handlers.get(type(event))
        if handler is None:
            raise TypeError(
                f"no handler for scheduled event {type(event).__name__}; "
                f"known events: {sorted(t.__name__ for t in self._handlers)}"
            )
        handler(event, event.time)

    def current_time(self) -> float:
        """The latest instant any hosted node has been busy until."""
        return max(
            [stats.busy_until for stats in self.stats.nodes.values()] or [0.0]
        )

    def expire_all(self, now: float) -> None:
        """Sweep residual soft state out of every node's database at *now*.

        Expiry is otherwise lazy (tables expire when touched), so snapshots
        taken between phases would include tuples whose TTL already elapsed.
        Storage-tier gauges refresh here too: expiry sweeps are exactly the
        phase boundaries at which statistics snapshots are taken.
        """
        for engine in self.engines.values():
            engine.database.expire(now)
        self.refresh_provenance_stats()

    def refresh_provenance_stats(self) -> None:
        """Copy each archive's storage-tier gauges into the node statistics.

        ``provenance_bytes_resident`` is a gauge (current residency) and the
        other two are archive-owned cumulative counters, so they are
        *assigned*, not added — calling this any number of times is
        idempotent.  Both backends refresh at the same deterministic points
        (expiry sweeps, sharded stats snapshots), which keeps the three
        counters identical between serial and sharded runs.
        """
        for address, engine in self.engines.items():
            archive = engine.offline_provenance
            node_stats = self.stats.node(address)
            node_stats.provenance_bytes_resident = archive.resident_bytes()
            node_stats.provenance_bytes_spilled = archive.spilled_bytes()
            node_stats.spill_reads = archive.spill_read_count()

    def count_facts(self, relation: str) -> int:
        """Stored-tuple count of *relation* across this kernel's nodes."""
        return sum(len(engine.facts(relation)) for engine in self.engines.values())

    def run(
        self,
        base_facts: Optional[Dict[Address, Iterable[Fact]]] = None,
        start_time: float = 0.0,
    ) -> SimulationResult:
        """Inject base facts at *start_time* and run to the distributed fixpoint."""
        injected = base_facts if base_facts is not None else self.link_facts()
        for address, facts in injected.items():
            self.schedule(
                FactInjection(time=start_time, address=address, facts=tuple(facts))
            )
        converged = self.run_until_idle()
        return self.finish(converged)

    def issue_query(
        self, query: ProvenanceQuery, now: Optional[float] = None
    ) -> PendingQuery:
        """Start an in-network provenance query at simulated instant *now*.

        Requests, responses and timeouts are dispatched through the normal
        event loop: drain it (:meth:`run_until_idle`) and read
        ``pending.result()``.  Defaults to issuing at the current simulated
        time, i.e. after whatever the network has already been through.
        """
        at = self.current_time() if now is None else now
        return self.queries.issue(query, now=at)

    def query(
        self,
        root,
        at: Address,
        mode: str = "online",
        condensed: bool = False,
        authenticated: bool = False,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Issue a provenance query, run it to completion, return its result.

        ``root`` may be a :class:`~repro.engine.tuples.Fact` or a fact key.
        """
        key = as_fact_key(root)
        pending = self.issue_query(
            ProvenanceQuery(
                root=key,
                at=at,
                mode=mode,
                condensed=condensed,
                authenticated=authenticated,
                timeout=timeout,
            )
        )
        self.run_until_idle()
        return pending.result()

    def finish(self, converged: bool = True) -> SimulationResult:
        """Close the books on a run: final stats plus residual soft-state expiry.

        Residual soft state is expired once at the run's completion time, so
        post-run ``facts()`` snapshots never include tuples whose TTL elapsed
        before the last event (expiry is otherwise lazy — a tuple nothing
        touched after its deadline would linger in the snapshot).
        """
        self.stats.total_events = self._events_processed
        self.stats.completion_time = self.current_time()
        self.expire_all(self.stats.completion_time)
        return SimulationResult(
            stats=self.stats,
            engines=self.engines,
            converged=converged,
            events_processed=self._events_processed,
        )

    # -- event handlers ----------------------------------------------------------

    def _handle_delivery(self, event: MessageDelivery, at: float) -> None:
        self._deliver(event.message, at)

    def _handle_query_timeout(self, event: QueryTimeout, at: float) -> None:
        self.queries.handle_timeout(event, at)

    def _handle_link_down(self, event: LinkDown, at: float) -> None:
        key = (event.source, event.destination)
        self._down_links.add(key)
        if not event.retract:
            return
        engine = self.engines.get(event.source)
        if engine is None:
            return
        stored = tuple(
            fact
            for fact in engine.facts(self.link_relation)
            if len(fact.values) >= 2
            and fact.values[0] == event.source
            and fact.values[1] == event.destination
        )
        if stored:
            # A repeated LinkDown for an already-retracted link finds no
            # tuples; keep the earlier remembered ones so a bare LinkUp can
            # still restore the link.
            self._failed_link_facts[key] = stored
            self._retract(event.source, stored, at)

    def _handle_link_up(self, event: LinkUp, at: float) -> None:
        key = (event.source, event.destination)
        self._down_links.discard(key)
        # A dead link's wire forgets its queue: transmissions serialized
        # behind the failure never happened, so the recovered link must not
        # inherit the busy window they had reserved.
        self._link_busy_until.pop(key, None)
        if not self.hosts(event.source):
            return
        facts = event.facts or self._failed_link_facts.get(key, ())
        if facts:
            # Remember before injecting: if the source is crashed right now
            # the injection is dropped, but NodeRecover re-injects from the
            # remembered set — the restored link must not be lost with it.
            remembered = self._base_facts.setdefault(event.source, {})
            for fact in facts:
                remembered[fact.key()] = fact
            self._inject(event.source, facts, at, remember=False)

    def _handle_node_crash(self, event: NodeCrash, at: float) -> None:
        self._down_nodes.add(event.address)
        # A crashed node's refresh timers die with it; recovery re-injection
        # arms fresh ones.  Already-materialized fire buckets are filtered
        # by the down-node check at fire time.
        self._wheels.pop(event.address, None)
        engine = self.engines.get(event.address)
        if engine is not None and event.clear_state:
            engine.reset_state()
            # The reset bumps the engine's provenance epoch, so stale memo
            # entries could never be served anyway — wiping eagerly frees
            # the memory and counts the loss where it happened.
            cache = self._query_caches.get(event.address)
            if cache is not None:
                self.stats.node(event.address).cache_invalidations += cache.clear()

    def _handle_node_recover(self, event: NodeRecover, at: float) -> None:
        self._down_nodes.discard(event.address)
        if event.reinject:
            facts = self.live_base_facts(event.address)
            if facts:
                self._inject(event.address, facts, at, remember=False)

    def _handle_injection(self, event: FactInjection, at: float) -> None:
        self._inject(event.address, event.facts, at, remember=event.remember)

    def _handle_retraction(self, event: FactRetraction, at: float) -> None:
        self._retract(event.address, event.facts, at)

    # -- service plane -----------------------------------------------------------

    def serve(self, workload: QueryWorkload, start: Optional[float] = None) -> int:
        """Schedule *workload*'s arrivals, opening at *start* (default: now).

        Returns the number of initial arrivals offered; drain the scheduler
        (:meth:`run_until_idle`) to play the serve window out.  Closed-loop
        follow-ups are scheduled kernel-side as each query completes.
        """
        opening = self.current_time() if start is None else start
        arrivals = workload.events(self.topology.nodes, opening)
        for event in arrivals:
            self.schedule(event)
        return len(arrivals)

    def query_cache_for(self, address: Address) -> Optional[ClosureCache]:
        """The node's armed result cache (lazily built); ``None`` when off."""
        if self.query_cache is None:
            return None
        cache = self._query_caches.get(address)
        if cache is None:
            cache = self.query_cache.build()
            self._query_caches[address] = cache
        return cache

    def _handle_query_arrival(self, event: QueryArrival, at: float) -> None:
        """One service-plane arrival: admission, root resolution, issue."""
        address = event.address
        engine = self.engines.get(address)
        if engine is None:
            # The sharded coordinator routes arrivals to the hosting kernel;
            # an unknown address is a workload aimed at a node that does not
            # exist, dropped the same way stray deliveries are.
            return
        node_stats = self.stats.node(address)
        if address in self._down_nodes:
            # An always-on service keeps taking arrivals; a crashed node
            # simply fails to serve them.
            node_stats.queries_shed += 1
            self._service_continue(event, at)
            return
        if self.admission is not None:
            bucket = self._admission_buckets.get(address)
            if bucket is None:
                bucket = self.admission.bucket()
                self._admission_buckets[address] = bucket
            if not bucket.try_acquire(at):
                node_stats.queries_rejected += 1
                if (
                    self.admission.policy == "retry"
                    and event.attempt < self.admission.retries
                ):
                    self.scheduler.schedule(
                        QueryArrival(
                            time=at + self.admission.retry_delay,
                            address=event.address,
                            relation=event.relation,
                            draw=event.draw,
                            pool=event.pool,
                            mode=event.mode,
                            condensed=event.condensed,
                            client=event.client,
                            arrival_id=event.arrival_id,
                            attempt=event.attempt + 1,
                            deadline=event.deadline,
                            think=event.think,
                        )
                    )
                else:
                    node_stats.queries_shed += 1
                    self._service_continue(event, at)
                return
        unanswerable = not self.config.provenance_mode.maintains_provenance or (
            event.mode == "offline" and not self.config.keep_offline_provenance
        )
        root = None if unanswerable else self._service_root(engine, event)
        if root is None:
            # Nothing to trace (empty table, or a configuration recording no
            # pointers): the arrival is shed, not an error — the service
            # stays up and the workload's loop keeps going.
            node_stats.queries_shed += 1
            self._service_continue(event, at)
            return
        self.queries.issue(
            ProvenanceQuery(
                root=root,
                at=address,
                mode=event.mode,
                condensed=event.condensed,
            ),
            now=at,
            service=event,
        )

    def _service_root(self, engine: NodeEngine, event: QueryArrival):
        """Resolve the arrival's root selector against the asker's live store.

        The draw indexes the node's sorted tuple list for the selected
        relation — a pure function of per-node state, which is identical at
        any instant under every backend, so both backends trace the same
        roots.  ``None`` when the node holds no such tuples.
        """
        facts = sorted(engine.facts(event.relation), key=lambda fact: fact.values)
        if not facts:
            return None
        return facts[event.draw % len(facts)].key()

    def service_query_finished(self, pending: PendingQuery) -> None:
        """Record one service query's completion; keep its closed loop going."""
        node_stats = self.stats.node(pending.query.at)
        node_stats.queries_completed += 1
        bucket = latency_bucket(pending.completed_at - pending.issued_at)
        node_stats.query_latency_buckets[bucket] = (
            node_stats.query_latency_buckets.get(bucket, 0) + 1
        )
        self._service_continue(pending.service, pending.completed_at)

    def _service_continue(self, event: QueryArrival, at: float) -> None:
        """Schedule a closed-loop client's next arrival, think time after *at*.

        Open-loop arrivals (``client < 0``) have their whole schedule
        precomputed by the workload generator; nothing to do here.
        """
        if event.client < 0:
            return
        next_at = at + event.think
        if next_at >= event.deadline:
            return
        # Content-ranked (client, arrival id, attempt): no stamp needed, and
        # the follow-up sorts identically no matter which kernel computed it.
        self.scheduler.schedule(next_arrival(event, next_at))

    def _handle_refresh(self, event: SoftStateRefresh, at: float) -> None:
        if self.refresh_mode == "wheel":
            # The wheel plane refreshes continuously; a round event's only
            # remaining effect — advancing the refresh horizon — already
            # happened when scheduling it emitted the horizon broadcast.
            # Keeping the event a no-op lets scenario scripts stay uniform
            # across refresh modes.
            return
        # Expanded at fire time so control events that share the timestamp
        # (and were scheduled earlier) are already reflected: a link that
        # just failed is excluded, a node that just crashed stays silent.
        # Each kernel refreshes the nodes it hosts; the others' remembered
        # base-fact maps are empty here.
        for address in self.topology.nodes:
            if address in self._down_nodes:
                continue
            facts = self.live_base_facts(address)
            if facts:
                self._inject(address, facts, at, remember=False)

    # -- timer-wheel refresh plane ------------------------------------------------

    def _handle_refresh_horizon(self, event: RefreshHorizon, at: float) -> None:
        """Materialize every hosted refresh timer due up to the new horizon.

        Due timers coalesce into one :class:`RefreshTimerFire` per (node,
        instant) — content-ranked, so every backend fires them in the same
        order.  ``max(deadline, at)`` guards the catch-up edge (a deadline
        at the quantization boundary never schedules into the past, which
        the pipelined backend's conservative lookahead relies on).
        """
        if event.horizon > self._wheel_horizon:
            self._wheel_horizon = event.horizon
        for address in self.hosted:
            wheel = self._wheels.get(address)
            if not wheel:
                continue
            for deadline, key in wheel.advance(event.horizon):
                self._queue_refresh(address, key, max(deadline, at))

    def _handle_refresh_fire(self, event: RefreshTimerFire, at: float) -> None:
        """One node's due refresh timers fire: re-assert, rate-limited."""
        address = event.address
        keys = self._due_refresh.pop((address, at), None)
        if not keys:
            return
        node_stats = self.stats.node(address)
        node_stats.timer_events += 1
        if address in self._down_nodes:
            # A crashed node's timers lapse silently; recovery re-injects
            # its base facts, which re-arms them.
            return
        engine = self.engines.get(address)
        if engine is None:
            return
        remembered = self._base_facts.get(address, {})
        bucket: Optional[TokenBucket] = None
        if self.refresh_rate > 0:
            bucket = self._refresh_buckets.get(address)
            if bucket is None:
                bucket = self._refresh_buckets[address] = TokenBucket(
                    rate=self.refresh_rate, burst=self.refresh_burst
                )
        due_facts: List[Fact] = []
        for key in keys:
            fact = remembered.get(key)
            if fact is None:
                continue  # retracted since the timer was armed
            if (
                fact.relation == self.link_relation
                and len(fact.values) >= 2
                and (fact.values[0], fact.values[1]) in self._down_links
            ):
                # A dead link's tuple is neither refreshed nor re-armed:
                # it decays, and LinkUp re-injects (and re-arms) it.
                continue
            if bucket is not None and not bucket.try_acquire(at):
                # Over the refresh budget: defer to the deterministic next
                # token instead of refreshing in a burst.
                retry_at = at + (1.0 - bucket.tokens) / bucket.rate
                self._arm_refresh(address, key, retry_at)
                continue
            due_facts.append(fact)
            self._arm_refresh(address, key, at + self.refresh_interval)
        if not due_facts:
            return
        start = max(at, node_stats.busy_until)
        sent_before = node_stats.messages_sent
        bytes_before = node_stats.bytes_sent
        result = engine.refresh_batch(due_facts, start)
        self._account_processing(address, start, result.report, node_stats)
        self._dispatch_outgoing(address, result.outgoing, node_stats)
        node_stats.refresh_messages += node_stats.messages_sent - sent_before
        node_stats.refresh_bytes += node_stats.bytes_sent - bytes_before

    def _arm_refresh(self, address: Address, key: FactKey, deadline: float) -> None:
        """Arm (or re-arm) one base tuple's refresh timer at its owner.

        Deadlines beyond the announced wheel horizon park in the node's
        wheel; deadlines at or inside it (re-arms during a drained window)
        materialize directly — quantized to the same tick grid the wheel
        uses, so a timer fires at the same instant either way.
        """
        wheel = self._wheels.get(address)
        if wheel is None:
            wheel = self._wheels[address] = TimerWheel()
        if deadline > self._wheel_horizon:
            wheel.schedule(key, deadline)
            return
        wheel.cancel(key)
        tick = math.ceil((deadline - wheel.epoch) / wheel.resolution)
        self._queue_refresh(address, key, wheel.epoch + tick * wheel.resolution)

    def _queue_refresh(self, address: Address, key: FactKey, when: float) -> None:
        """Coalesce one due timer into its (node, instant) fire bucket."""
        bucket = self._due_refresh.get((address, when))
        if bucket is None:
            self._due_refresh[(address, when)] = {key: None}
            # Content-ranked (address), scheduled inside kernel processing —
            # like query timeouts, never stamped.
            self.scheduler.schedule(RefreshTimerFire(time=when, address=address))
        else:
            bucket[key] = None

    # -- internals ----------------------------------------------------------------

    def _inject(
        self,
        address: Address,
        facts: Iterable[Fact],
        at: float,
        remember: bool = True,
    ) -> None:
        """Insert base *facts* at *address* and ship what they cause.

        Injections addressed to a crashed or unknown node are ignored — a
        down node's application is down with it.
        """
        if address in self._down_nodes:
            return
        engine = self.engines.get(address)
        if engine is None:
            return
        node_stats = self.stats.node(address)
        remembered = self._base_facts.setdefault(address, {}) if remember else None
        wheel_mode = self.refresh_mode == "wheel"
        known = self._base_facts.get(address, {})
        pending: List[OutgoingFact] = []
        for fact in facts:
            start = max(at, node_stats.busy_until)
            result = engine.insert_base(fact, now=start)
            self._account_processing(address, start, result.report, node_stats)
            pending.extend(result.outgoing)
            if remembered is not None:
                remembered[fact.key()] = fact
            if wheel_mode and fact.key() in known:
                # Every remembered base tuple owns a refresh timer; injection
                # (initial, LinkUp restore, crash-recovery re-inject) arms or
                # re-arms it one interval out.
                self._arm_refresh(address, fact.key(), at + self.refresh_interval)
        # One delta round per injection: everything the injected facts caused
        # ships together (one batch per destination when batching).
        self._dispatch_outgoing(address, pending, node_stats)

    def _retract(self, address: Address, facts: Iterable[Fact], at: float) -> None:
        """Withdraw base *facts* at *address*, cascading local invalidation."""
        if address in self._down_nodes:
            return
        engine = self.engines.get(address)
        if engine is None:
            return
        node_stats = self.stats.node(address)
        remembered = self._base_facts.get(address)
        wheel = self._wheels.get(address)
        for fact in facts:
            start = max(at, node_stats.busy_until)
            result = engine.retract_base(fact, now=start)
            self._account_processing(address, start, result.report, node_stats)
            # One-fixpoint deletions: chase remote copies with anti-deltas
            # (routed around failed links — repair traffic, like queries,
            # is not restricted to program-visible links), and re-ship what
            # the surviving alternatives re-derived so downstream copies
            # holding a stale fire-time polynomial are repaired in the same
            # fixpoint.
            self._ship_anti_deltas(address, result.anti_deltas, node_stats)
            self._dispatch_outgoing(address, result.outgoing, node_stats)
            if remembered is not None:
                remembered.pop(fact.key(), None)
            if wheel is not None:
                wheel.cancel(fact.key())

    def _deliver(self, message: WireMessage, deliver_at: float) -> None:
        destination = message.destination
        if destination in self._down_nodes:
            # The wire was paid for, but nobody is listening.
            self.stats.messages_lost += 1
            return
        engine = self.engines.get(destination)
        if engine is None:
            # A message to a nonexistent address must not fabricate a phantom
            # NodeStats entry (which would inflate receive counters and join
            # the completion-time max); it is dropped and counted globally.
            # Destinations hosted by another kernel never reach here: the
            # coordinator routes deliveries by shard assignment.
            self.stats.messages_dropped += 1
            return
        node_stats = self.stats.node(destination)
        node_stats.record_receive(message)
        if isinstance(message, AntiDelta):
            # Keys retracted upstream: prune local support polynomials and
            # keep the deletion fixpoint moving across the export graph.
            start = max(deliver_at, node_stats.busy_until)
            result = engine.retract_remote(message.keys, start)
            self._account_processing(destination, start, result.report, node_stats)
            self._ship_anti_deltas(destination, result.anti_deltas, node_stats)
            self._dispatch_outgoing(destination, result.outgoing, node_stats)
            return
        if isinstance(message, (QueryRequest, QueryResponse)):
            # Query-plane traffic is handled by the query engine, not the
            # datalog engine; it shares the loss semantics above (a crashed
            # node answers nothing, the querier's timeout reports the miss).
            self.queries.deliver(message, deliver_at)
            return
        if self.batch_receive:
            start = max(deliver_at, node_stats.busy_until)
            result = engine.receive_batch(message.facts(), now=start)
            self._account_processing(destination, start, result.report, node_stats)
            pending = result.outgoing
        else:
            pending = []
            for fact in message.facts():
                start = max(deliver_at, node_stats.busy_until)
                result = engine.receive(fact, now=start, provenance=fact.provenance)
                self._account_processing(destination, start, result.report, node_stats)
                pending.extend(result.outgoing)
        # One delta round per delivered message: the whole round's output
        # ships together (one batch per destination when batching).
        self._dispatch_outgoing(destination, pending, node_stats)

    def _account_processing(
        self,
        address: Address,
        start: float,
        report: ProcessingReport,
        node_stats: NodeStats,
    ) -> None:
        cpu = self.cost_model.cpu_seconds(report)
        node_stats.cpu_seconds += cpu
        node_stats.busy_until = start + cpu
        node_stats.facts_derived += report.facts_derived
        node_stats.facts_stored += report.facts_inserted
        node_stats.facts_retracted += report.facts_retracted
        node_stats.rederivations += report.rederivations

    def _ship_anti_deltas(
        self,
        source: Address,
        anti_deltas: Dict[str, List[FactKey]],
        node_stats: NodeStats,
    ) -> None:
        """Ship one retraction pass's anti-delta fanout (routed delivery)."""
        if not anti_deltas:
            return
        send_time = node_stats.busy_until
        for destination, keys in anti_deltas.items():
            message = AntiDelta(
                source=source,
                destination=destination,
                keys=tuple(keys),
                sent_at=send_time,
                sequence=self._next_sequence(source),
            )
            self.ship_routed(source, destination, message, send_time, node_stats)

    def _next_sequence(self, source: Address) -> int:
        """Per-sending-node message sequence counter.

        Identical runs number identically, and the numbering is independent
        of how nodes are partitioned across kernels — which is what lets the
        scheduler's content-based tie-break replay the serial order from any
        shard's queue.
        """
        value = self._sequences.get(source, 0) + 1
        self._sequences[source] = value
        return value

    def _schedule_delivery(self, deliver_at: float, message: WireMessage) -> None:
        """Queue a delivery locally, or export it to the destination's kernel."""
        if self._export_sink is not None and message.destination not in self._hosted_set:
            self._export_sink.append((deliver_at, message))
            return
        self.scheduler.schedule(MessageDelivery(time=deliver_at, message=message))

    def _dispatch_outgoing(
        self, source: Address, outgoing: List[OutgoingFact], node_stats: NodeStats
    ) -> None:
        if not outgoing:
            return
        send_time = node_stats.busy_until
        if self.batching:
            for destination, items in group_outgoing(outgoing).items():
                batch = MessageBatch(
                    source=source,
                    destination=destination,
                    items=tuple(
                        BatchItem(
                            fact=item.fact,
                            security_bytes=item.security_bytes,
                            provenance_bytes=item.provenance_bytes,
                        )
                        for item in items
                    ),
                    sent_at=send_time,
                    sequence=self._next_sequence(source),
                )
                self._ship(source, destination, batch, send_time, node_stats)
        else:
            for item in outgoing:
                message = Message(
                    source=source,
                    destination=item.destination,
                    fact=item.fact,
                    security_bytes=item.security_bytes,
                    provenance_bytes=item.provenance_bytes,
                    sent_at=send_time,
                    sequence=self._next_sequence(source),
                )
                self._ship(source, item.destination, message, send_time, node_stats)

    def route_between(
        self, source: Address, destination: Address
    ) -> Optional[List[Link]]:
        """Shortest live directed path from *source* to *destination*, or None.

        BFS over the topology minus currently-down links; crashed nodes do
        not forward (they may still be the destination — delivery-time loss
        handles that).  Deterministic: neighbours are explored in topology
        declaration order.  Used by the query plane, whose request/response
        traffic travels between arbitrary node pairs, unlike data traffic
        which only ever crosses single program-visible links.
        """
        if source == destination:
            return []
        parents: Dict[Address, Tuple[Address, Link]] = {source: None}  # type: ignore[dict-item]
        frontier: List[Address] = [source]
        while frontier:
            next_frontier: List[Address] = []
            for node in frontier:
                for link in self.topology.outgoing(node):
                    hop = link.destination
                    if hop in parents or (node, hop) in self._down_links:
                        continue
                    if hop != destination and hop in self._down_nodes:
                        continue
                    parents[hop] = (node, link)
                    if hop == destination:
                        path: List[Link] = []
                        current = hop
                        while parents[current] is not None:
                            previous, via = parents[current]
                            path.append(via)
                            current = previous
                        path.reverse()
                        return path
                    next_frontier.append(hop)
            frontier = next_frontier
        return None

    def ship_routed(
        self,
        source: Address,
        destination: Address,
        message: WireMessage,
        send_time: float,
        node_stats: NodeStats,
    ) -> None:
        """Ship a message along the live multi-hop route to *destination*.

        The sender pays for the bytes either way.  With no live route —
        partition, downed links — the message is lost; otherwise it
        serializes on the first hop's wire (the sender's interface) and pays
        the summed propagation latency of every hop on the path.
        """
        if message.sequence == 0:
            message.sequence = self._next_sequence(source)
        node_stats.record_send(message)
        self.stats.total_messages += 1
        path = self.route_between(source, destination)
        if path is None:
            self.stats.messages_lost += 1
            return
        size = message.size_bytes()
        if path:
            first = path[0]
            wire_seconds = size / first.bandwidth if first.bandwidth > 0 else 0.0
            key = (source, first.destination)
            transmit_at = max(send_time, self._link_busy_until.get(key, 0.0))
            self._link_busy_until[key] = transmit_at + wire_seconds
            latency = sum(link.latency for link in path)
        else:
            wire_seconds = 0.0
            transmit_at = send_time
            latency = self.default_latency
        deliver_at = transmit_at + wire_seconds + latency
        self._schedule_delivery(deliver_at, message)

    def _ship(
        self,
        source: Address,
        destination: Address,
        message: WireMessage,
        send_time: float,
        node_stats: NodeStats,
    ) -> None:
        """Charge the send and enqueue delivery with link-serialized timing."""
        if message.sequence == 0:
            message.sequence = self._next_sequence(source)
        node_stats.record_send(message)
        self.stats.total_messages += 1
        size = message.size_bytes()
        link = self.topology.link_between(source, destination)
        if link is not None:
            latency, bandwidth = link.latency, link.bandwidth
        else:
            latency, bandwidth = self.default_latency, self.default_bandwidth
        wire_seconds = size / bandwidth if bandwidth > 0 else 0.0
        key = (source, destination)
        transmit_at = max(send_time, self._link_busy_until.get(key, 0.0))
        self._link_busy_until[key] = transmit_at + wire_seconds
        if key in self._down_links:
            # The sender cannot tell the link is dead: it pays the send and
            # the message is lost on the wire.
            self.stats.messages_lost += 1
            return
        deliver_at = transmit_at + wire_seconds + latency
        self._schedule_delivery(deliver_at, message)
