"""A hierarchical timer wheel on simulated time.

The timer-wheel refresh plane (``refresh_mode="wheel"``) gives every base
tuple its own refresh timer at its owner.  Thousands of per-tuple timers
cannot live in the event heap: scheduling and cancelling would cost
``O(log n)`` each, retraction churn would leave tombstones against the
event budget, and — worse — self-re-arming heap events would keep
``run_until_idle`` from ever quiescing.  The classic fix (Varghese &
Lauck's hashed hierarchical timing wheels) applies unchanged to simulated
time: deadlines are quantized to a tick, ticks hash into a small ring of
slots per level, and coarser levels cascade into finer ones as the wheel
turns.

* ``schedule`` / ``cancel`` are O(1): a dict entry plus one slot-dict
  insert or pop (re-arming a tuple is cancel + schedule).
* ``advance`` drains every live timer with a deadline inside the horizon
  in deterministic order — ticks ascending, insertion order within a
  tick — so both execution backends fire the same timers in the same
  order.
* The wheel is plain data (dicts, lists, tuples) and pickles with the
  kernel for ``shard_mode="processes"``.

The wheel itself never touches the event heap; the simulation kernel turns
drained deadlines into coalesced per-node :class:`~repro.net.events.
RefreshTimerFire` events (see ``net/kernel.py``).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

#: Slots per level and number of levels.  64^3 ticks of range is ~36 hours
#: at the default half-second resolution; beyond that, entries park in the
#: outermost ring and re-cascade as the wheel turns, which only costs extra
#: cascade hops, never correctness.
SLOTS = 64
LEVELS = 3

#: (tick, level, slot index) — where one timer currently lives.
_Entry = Tuple[int, int, int]


class TimerWheel:
    """Hierarchical timer wheel over float simulated time.

    ``resolution`` is the tick width in simulated seconds; deadlines round
    *up* to a tick, so a timer never fires early and fires at most one
    tick late.  All timers for one key replace each other: scheduling a
    key that is already armed moves its deadline.
    """

    def __init__(self, resolution: float = 0.5, epoch: float = 0.0) -> None:
        if resolution <= 0.0:
            raise ValueError("timer wheel resolution must be positive")
        self.resolution = resolution
        self.epoch = epoch
        #: Watermark: every tick <= _current has been drained.
        self._current = 0
        self._slots: List[List[Dict[Hashable, int]]] = [
            [{} for _ in range(SLOTS)] for _ in range(LEVELS)
        ]
        self._entries: Dict[Hashable, _Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def deadline(self, key: Hashable) -> float:
        """The quantized deadline of an armed *key* (KeyError when unarmed)."""
        tick = self._entries[key][0]
        return self.epoch + tick * self.resolution

    def schedule(self, key: Hashable, deadline: float) -> None:
        """Arm (or re-arm) *key* to fire at *deadline*."""
        self.cancel(key)
        tick = math.ceil((deadline - self.epoch) / self.resolution)
        if tick <= self._current:
            tick = self._current + 1
        self._place(key, tick)

    def cancel(self, key: Hashable) -> None:
        """Disarm *key* if armed; a no-op otherwise."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            _tick, level, index = entry
            self._slots[level][index].pop(key, None)

    def _place(self, key: Hashable, tick: int) -> None:
        delta = tick - self._current
        if delta < SLOTS:
            level = 0
            index = tick % SLOTS
        elif delta < SLOTS * SLOTS:
            level = 1
            index = (tick // SLOTS) % SLOTS
        else:
            level = 2
            index = (tick // (SLOTS * SLOTS)) % SLOTS
        self._slots[level][index][key] = tick
        self._entries[key] = (tick, level, index)

    def _cascade(self, level: int, index: int) -> None:
        slot = self._slots[level][index]
        if not slot:
            return
        moved = list(slot.items())
        slot.clear()
        for key, tick in moved:
            self._place(key, tick)

    def advance(self, horizon: float) -> List[Tuple[float, Hashable]]:
        """Drain every timer with a deadline at or before *horizon*.

        Returns ``(quantized deadline, key)`` pairs — ticks ascending,
        insertion order within a tick — and moves the watermark so each
        timer is reported exactly once across successive calls.
        """
        target = math.floor((horizon - self.epoch) / self.resolution)
        due: List[Tuple[float, Hashable]] = []
        while self._current < target:
            if not self._entries:
                self._current = target
                break
            self._current += 1
            tick = self._current
            if tick % SLOTS == 0:
                if tick % (SLOTS * SLOTS) == 0:
                    self._cascade(2, (tick // (SLOTS * SLOTS)) % SLOTS)
                self._cascade(1, (tick // SLOTS) % SLOTS)
            slot = self._slots[0][tick % SLOTS]
            if not slot:
                continue
            when = self.epoch + tick * self.resolution
            for key in list(slot):
                del self._entries[key]
                due.append((when, key))
            slot.clear()
        return due
