"""Simulated distributed substrate.

The paper's evaluation ran up to 100 P2 processes on one machine; this
package provides the equivalent: a deterministic discrete-event simulator in
which every node runs a full NDlog/SeNDlog engine, messages carry serialized
tuples (plus their security envelope and provenance annotations), and the
harness measures the two metrics of Section 6 — distributed-fixpoint
completion time under a per-node CPU cost model, and total bandwidth across
all nodes.
"""

from repro.net.address import Address, node_name
from repro.net.events import (
    EventScheduler,
    FactInjection,
    FactRetraction,
    LinkDown,
    LinkUp,
    MessageDelivery,
    NodeCrash,
    NodeRecover,
    QueryTimeout,
    SimulationEvent,
    SoftStateRefresh,
)
from repro.net.message import Message, MessageBatch, QueryRequest, QueryResponse
from repro.net.link import Link
from repro.net.query import (
    PendingQuery,
    ProvenanceQuery,
    QueryEngine,
    QueryResult,
)
from repro.net.topology import Topology, grid_topology, line_topology, random_topology, ring_topology
from repro.net.stats import NetworkStats, NodeStats
from repro.net.kernel import SimulationKernel
from repro.net.sharding import ShardPlan, ShardedSimulator, partition_topology
from repro.net.simulator import CostModel, Simulator, SimulationResult

__all__ = [
    "Address",
    "CostModel",
    "EventScheduler",
    "FactInjection",
    "FactRetraction",
    "Link",
    "LinkDown",
    "LinkUp",
    "Message",
    "MessageBatch",
    "MessageDelivery",
    "NetworkStats",
    "NodeCrash",
    "NodeRecover",
    "NodeStats",
    "PendingQuery",
    "ProvenanceQuery",
    "QueryEngine",
    "QueryRequest",
    "QueryResponse",
    "QueryResult",
    "QueryTimeout",
    "ShardPlan",
    "ShardedSimulator",
    "SimulationEvent",
    "SimulationKernel",
    "SimulationResult",
    "Simulator",
    "SoftStateRefresh",
    "Topology",
    "grid_topology",
    "line_topology",
    "node_name",
    "partition_topology",
    "random_topology",
    "ring_topology",
]
