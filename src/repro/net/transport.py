"""Cheap coordination transport for the sharded backend.

The sharded coordinator and its workers exchange three kinds of payload at
every synchronization point: cross-shard export batches (``(deliver_at,
message)`` pairs), stamped control-event batches (drain flushes), and small
window-grant headers.  Pickling those per window is the coordination floor
ROADMAP item 2 complains about — a ``Fact`` pickles to hundreds of bytes of
class metadata — so this module provides a compact **binary frame codec**:

* struct-packed numeric headers (times, sequence numbers, counts);
* a per-frame **string table** interning addresses, relations, principals
  and rule labels, so each repeated name costs 4 bytes;
* payloads (fact values, provenance monomials, query keys) via the same
  deterministic ``repr`` literal encoding the tiered provenance store uses
  (:mod:`repro.provenance.tiers`): ``repr`` of literals + ``ast.literal_eval``
  round-trips exactly and never depends on hash seeds, unlike pickled sets.

Frames are **deterministic**: encoding the same logical payload yields the
same bytes in every process, which is what lets the coordinator expose
``coordination_bytes`` as a deterministic counter — identical between
``shard_mode="inline"`` and ``"processes"`` runs.  Messages whose payload is
not literal-encodable (exotic user values) fall back to a per-message pickle
record, keeping the codec total.

Two transports share the frame surface (``TRANSPORTS``):

* ``"binary"`` — the codec above (the default);
* ``"pickle"`` — one pickle per payload, kept as the measurable baseline the
  shard-scaling benchmark compares coordination bytes against;
* ``"shm"`` — the binary codec, plus a zero-copy
  :class:`SharedMemoryRing` per pipe direction: frames over
  ``SHM_MIN_FRAME_BYTES`` are placed in a shared-memory ring and only a
  12-byte descriptor crosses the pipe (see :mod:`repro.net.sharding`).
"""

from __future__ import annotations

import ast
import math
import os
import pickle
import struct
import zlib
from itertools import count as _counter
from typing import Dict, List, Optional, Tuple

from repro.engine.tuples import Fact
from repro.net.events import (
    FactInjection,
    FactRetraction,
    LinkDown,
    LinkUp,
    MessageDelivery,
    NodeCrash,
    NodeRecover,
    QueryArrival,
    QueryTimeout,
    RefreshHorizon,
    RefreshTimerFire,
    SimulationEvent,
    SoftStateRefresh,
)
from repro.net.message import (
    AntiDelta,
    Message,
    BatchItem,
    MessageBatch,
    QueryClosureEntry,
    QueryRequest,
    QueryResponse,
    WIRE_KINDS,
)
from repro.provenance.authenticated import SignedAnnotation
from repro.provenance.condensed import CondensedProvenance
from repro.provenance.distributed import ProvenancePointer
from repro.provenance.polynomial import ProvenanceExpression

#: Coordination transports the sharded backend accepts.
TRANSPORTS = ("pickle", "binary", "shm")

#: Frames at least this large ride the shared-memory ring under
#: ``transport="shm"``; smaller ones go down the pipe (the descriptor and
#: bookkeeping would cost more than the copy).
SHM_MIN_FRAME_BYTES = 4096

#: Binary frames at least this large are deflate-compressed before hitting
#: the wire.  ``zlib.compress`` at a fixed level is deterministic for a given
#: input, so compressed frames — and therefore ``coordination_bytes`` — stay
#: identical across runs and across inline/process shard modes on one host.
COMPRESS_MIN_BYTES = 512

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")

_KIND_PICKLE = 255
_EVENT_KINDS: Dict[type, int] = {
    FactInjection: 1,
    FactRetraction: 2,
    LinkDown: 3,
    LinkUp: 4,
    NodeCrash: 5,
    NodeRecover: 6,
    SoftStateRefresh: 7,
    MessageDelivery: 8,
    QueryTimeout: 9,
    QueryArrival: 10,
    RefreshHorizon: 11,
    RefreshTimerFire: 12,
}

_PROV_NONE = 0
_PROV_CONDENSED = 1
_PROV_SIGNED = 2


class _Unencodable(Exception):
    """Internal: this payload cannot take the literal fast path."""


class _Writer:
    """Append-only binary buffer with struct-packed primitives."""

    __slots__ = ("buffer",)

    def __init__(self) -> None:
        self.buffer = bytearray()

    def u8(self, value: int) -> None:
        self.buffer += _U8.pack(value)

    def u32(self, value: int) -> None:
        self.buffer += _U32.pack(value)

    def u64(self, value: int) -> None:
        self.buffer += _U64.pack(value)

    def f64(self, value: float) -> None:
        self.buffer += _F64.pack(value)

    def blob(self, data: bytes) -> None:
        self.buffer += _U32.pack(len(data))
        self.buffer += data


class _Reader:
    """Sequential reader matching :class:`_Writer`."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self.data = data
        self.offset = offset

    def u8(self) -> int:
        value = _U8.unpack_from(self.data, self.offset)[0]
        self.offset += 1
        return value

    def u32(self) -> int:
        value = _U32.unpack_from(self.data, self.offset)[0]
        self.offset += 4
        return value

    def u64(self) -> int:
        value = _U64.unpack_from(self.data, self.offset)[0]
        self.offset += 8
        return value

    def f64(self) -> float:
        value = _F64.unpack_from(self.data, self.offset)[0]
        self.offset += 8
        return value

    def blob(self) -> bytes:
        length = self.u32()
        value = bytes(self.data[self.offset : self.offset + length])
        self.offset += length
        return value


class _StringTable:
    """Per-frame interning of repeated names (addresses, relations, ...)."""

    __slots__ = ("_indices", "_strings")

    def __init__(self) -> None:
        self._indices: Dict[str, int] = {}
        self._strings: List[str] = []

    def intern(self, value: str) -> int:
        if type(value) is not str:
            # Address-like subclasses of str intern by their text; anything
            # else has no stable literal form here.
            if not isinstance(value, str):
                raise _Unencodable(f"non-string name {value!r}")
            value = str(value)
        index = self._indices.get(value)
        if index is None:
            index = len(self._strings)
            self._indices[value] = index
            self._strings.append(value)
        return index

    def emit(self) -> bytes:
        writer = _Writer()
        writer.u32(len(self._strings))
        for text in self._strings:
            writer.blob(text.encode("utf-8"))
        return bytes(writer.buffer)

    @staticmethod
    def parse(reader: _Reader) -> List[str]:
        return [reader.blob().decode("utf-8") for _ in range(reader.u32())]


# ---------------------------------------------------------------------------
# Literal payloads
# ---------------------------------------------------------------------------

def _check_literal(value: object) -> None:
    """Raise :class:`_Unencodable` unless ``repr``/``literal_eval`` round-trips."""
    if value is None or value is True or value is False:
        return
    kind = type(value)
    if kind is str or kind is bytes or kind is int:
        return
    if kind is float:
        if math.isfinite(value):
            return
        raise _Unencodable("non-finite float has no literal form")
    if kind is tuple or kind is list:
        for element in value:
            _check_literal(element)
        return
    raise _Unencodable(f"value of type {kind.__name__} has no literal form")


def _literal_blob(value: object) -> bytes:
    _check_literal(value)
    return repr(value).encode("utf-8")


def _parse_literal(data: bytes) -> object:
    return ast.literal_eval(data.decode("utf-8"))


def _encode_provenance(writer: _Writer, table: _StringTable, annotation) -> None:
    if annotation is None:
        writer.u8(_PROV_NONE)
        return
    if isinstance(annotation, CondensedProvenance):
        writer.u8(_PROV_CONDENSED)
        writer.blob(_literal_blob(annotation.expression.monomials))
        return
    if isinstance(annotation, SignedAnnotation):
        writer.u8(_PROV_SIGNED)
        writer.blob(_literal_blob(annotation.annotation.expression.monomials))
        writer.u32(table.intern(annotation.principal))
        writer.blob(annotation.signature)
        return
    raise _Unencodable(f"unknown provenance annotation {type(annotation).__name__}")


def _decode_provenance(reader: _Reader, strings: List[str]):
    kind = reader.u8()
    if kind == _PROV_NONE:
        return None
    monomials = _parse_literal(reader.blob())
    condensed = CondensedProvenance(
        expression=ProvenanceExpression(monomials=monomials)
    )
    if kind == _PROV_CONDENSED:
        return condensed
    principal = strings[reader.u32()]
    signature = reader.blob()
    return SignedAnnotation(
        annotation=condensed, principal=principal, signature=signature
    )


_FACT_HAS_TTL = 1
_FACT_HAS_ASSERTER = 2
_FACT_HAS_SIGNATURE = 4
_FACT_HAS_ORIGIN = 8
_FACT_HAS_SUPPORT = 16


def _encode_fact(writer: _Writer, table: _StringTable, fact: Fact) -> None:
    support = fact.support
    if support is not None and not isinstance(support, ProvenanceExpression):
        raise _Unencodable(f"unknown support annotation {type(support).__name__}")
    flags = 0
    if fact.ttl is not None:
        flags |= _FACT_HAS_TTL
    if fact.asserted_by is not None:
        flags |= _FACT_HAS_ASSERTER
    if fact.signature is not None:
        flags |= _FACT_HAS_SIGNATURE
    if fact.origin is not None:
        flags |= _FACT_HAS_ORIGIN
    if support is not None:
        flags |= _FACT_HAS_SUPPORT
    writer.u32(table.intern(fact.relation))
    writer.u8(flags)
    writer.f64(fact.timestamp)
    if fact.ttl is not None:
        writer.f64(fact.ttl)
    if fact.asserted_by is not None:
        writer.u32(table.intern(fact.asserted_by))
    if fact.signature is not None:
        writer.blob(fact.signature)
    if fact.origin is not None:
        writer.u32(table.intern(fact.origin))
    if support is not None:
        writer.blob(_literal_blob(support.monomials))
    writer.blob(_literal_blob(fact.values))
    _encode_provenance(writer, table, fact.provenance)


def _decode_fact(reader: _Reader, strings: List[str]) -> Fact:
    relation = strings[reader.u32()]
    flags = reader.u8()
    timestamp = reader.f64()
    ttl = reader.f64() if flags & _FACT_HAS_TTL else None
    asserted_by = strings[reader.u32()] if flags & _FACT_HAS_ASSERTER else None
    signature = reader.blob() if flags & _FACT_HAS_SIGNATURE else None
    origin = strings[reader.u32()] if flags & _FACT_HAS_ORIGIN else None
    support = (
        ProvenanceExpression(monomials=_parse_literal(reader.blob()))
        if flags & _FACT_HAS_SUPPORT
        else None
    )
    values = _parse_literal(reader.blob())
    provenance = _decode_provenance(reader, strings)
    return Fact(
        relation=relation,
        values=values,
        timestamp=timestamp,
        ttl=ttl,
        asserted_by=asserted_by,
        signature=signature,
        provenance=provenance,
        origin=origin,
        support=support,
    )


def _encode_key(writer: _Writer, table: _StringTable, key) -> None:
    relation, values = key
    writer.u32(table.intern(relation))
    writer.blob(_literal_blob(tuple(values)))


def _decode_key(reader: _Reader, strings: List[str]):
    relation = strings[reader.u32()]
    return (relation, _parse_literal(reader.blob()))


# ---------------------------------------------------------------------------
# Wire messages
# ---------------------------------------------------------------------------

def _encode_message_body(writer: _Writer, table: _StringTable, message) -> None:
    kind = WIRE_KINDS.get(type(message))
    if kind is None:
        raise _Unencodable(f"unknown wire message {type(message).__name__}")
    writer.u8(kind)
    writer.u32(table.intern(message.source))
    writer.u32(table.intern(message.destination))
    writer.f64(message.sent_at)
    writer.u64(message.sequence)
    if isinstance(message, Message):
        writer.u32(message.security_bytes)
        writer.u32(message.provenance_bytes)
        _encode_fact(writer, table, message.fact)
    elif isinstance(message, MessageBatch):
        writer.u32(len(message.items))
        for item in message.items:
            writer.u32(item.security_bytes)
            writer.u32(item.provenance_bytes)
            _encode_fact(writer, table, item.fact)
    elif isinstance(message, QueryRequest):
        _encode_key(writer, table, message.key)
        writer.u64(message.query_id)
        writer.u64(message.request_id)
        writer.u32(table.intern(message.mode))
        writer.u8((1 if message.condensed else 0) | (2 if message.authenticated else 0))
        writer.u32(message.security_bytes)
        writer.u32(message.provenance_bytes)
    elif isinstance(message, AntiDelta):
        writer.u32(len(message.keys))
        for key in message.keys:
            _encode_key(writer, table, key)
    else:  # QueryResponse
        _encode_key(writer, table, message.key)
        writer.u64(message.query_id)
        writer.u64(message.request_id)
        writer.u32(len(message.entries))
        for entry in message.entries:
            _encode_key(writer, table, entry.key)
            writer.u32(table.intern(entry.node))
            writer.u8(1 if entry.is_base else 0)
            writer.u32(len(entry.pointers))
            for pointer in entry.pointers:
                _encode_key(writer, table, pointer.output)
                writer.u32(table.intern(pointer.rule_label))
                writer.u32(table.intern(pointer.node))
                writer.f64(pointer.timestamp)
                writer.u32(len(pointer.inputs))
                for input_key, input_origin in pointer.inputs:
                    _encode_key(writer, table, input_key)
                    if input_origin is None:
                        writer.u8(0)
                    else:
                        writer.u8(1)
                        writer.u32(table.intern(input_origin))
        writer.u32(len(message.missing))
        for key in message.missing:
            _encode_key(writer, table, key)
        _encode_provenance(writer, table, message.annotation)
        writer.u32(message.annotation_bytes)
        if message.signature is None:
            writer.u8(0)
        else:
            writer.u8(1)
            writer.blob(message.signature)


def _decode_message_body(reader: _Reader, strings: List[str]):
    kind = reader.u8()
    if kind == _KIND_PICKLE:
        return pickle.loads(reader.blob())
    source = strings[reader.u32()]
    destination = strings[reader.u32()]
    sent_at = reader.f64()
    sequence = reader.u64()
    if kind == 0:  # Message
        security = reader.u32()
        provenance = reader.u32()
        fact = _decode_fact(reader, strings)
        return Message(
            source=source,
            destination=destination,
            fact=fact,
            security_bytes=security,
            provenance_bytes=provenance,
            sent_at=sent_at,
            sequence=sequence,
        )
    if kind == 1:  # MessageBatch
        items = []
        for _ in range(reader.u32()):
            security = reader.u32()
            provenance = reader.u32()
            fact = _decode_fact(reader, strings)
            items.append(
                BatchItem(
                    fact=fact, security_bytes=security, provenance_bytes=provenance
                )
            )
        return MessageBatch(
            source=source,
            destination=destination,
            items=tuple(items),
            sent_at=sent_at,
            sequence=sequence,
        )
    if kind == 2:  # QueryRequest
        key = _decode_key(reader, strings)
        query_id = reader.u64()
        request_id = reader.u64()
        mode = strings[reader.u32()]
        flags = reader.u8()
        security = reader.u32()
        provenance = reader.u32()
        return QueryRequest(
            source=source,
            destination=destination,
            key=key,
            query_id=query_id,
            request_id=request_id,
            mode=mode,
            condensed=bool(flags & 1),
            authenticated=bool(flags & 2),
            sent_at=sent_at,
            sequence=sequence,
            security_bytes=security,
            provenance_bytes=provenance,
        )
    if kind == 4:  # AntiDelta
        keys = tuple(_decode_key(reader, strings) for _ in range(reader.u32()))
        return AntiDelta(
            source=source,
            destination=destination,
            keys=keys,
            sent_at=sent_at,
            sequence=sequence,
        )
    if kind == 3:  # QueryResponse
        key = _decode_key(reader, strings)
        query_id = reader.u64()
        request_id = reader.u64()
        entries = []
        for _ in range(reader.u32()):
            entry_key = _decode_key(reader, strings)
            node = strings[reader.u32()]
            is_base = bool(reader.u8())
            pointers = []
            for _ in range(reader.u32()):
                output = _decode_key(reader, strings)
                rule_label = strings[reader.u32()]
                pointer_node = strings[reader.u32()]
                timestamp = reader.f64()
                inputs = []
                for _ in range(reader.u32()):
                    input_key = _decode_key(reader, strings)
                    origin = strings[reader.u32()] if reader.u8() else None
                    inputs.append((input_key, origin))
                pointers.append(
                    ProvenancePointer(
                        output=output,
                        rule_label=rule_label,
                        node=pointer_node,
                        inputs=tuple(inputs),
                        timestamp=timestamp,
                    )
                )
            entries.append(
                QueryClosureEntry(
                    key=entry_key,
                    node=node,
                    is_base=is_base,
                    pointers=tuple(pointers),
                )
            )
        missing = tuple(_decode_key(reader, strings) for _ in range(reader.u32()))
        annotation = _decode_provenance(reader, strings)
        annotation_bytes = reader.u32()
        signature = reader.blob() if reader.u8() else None
        return QueryResponse(
            source=source,
            destination=destination,
            query_id=query_id,
            request_id=request_id,
            key=key,
            entries=tuple(entries),
            missing=missing,
            annotation=annotation,
            annotation_bytes=annotation_bytes,
            signature=signature,
            sent_at=sent_at,
            sequence=sequence,
        )
    raise ValueError(f"unknown wire-message kind {kind} in coordination frame")


def _encode_message(writer: _Writer, table: _StringTable, message) -> None:
    """Encode one wire message; pickle the record when not literal-encodable."""
    mark = len(writer.buffer)
    try:
        _encode_message_body(writer, table, message)
    except _Unencodable:
        del writer.buffer[mark:]
        writer.u8(_KIND_PICKLE)
        writer.blob(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))


# ---------------------------------------------------------------------------
# Control events (drain flushes)
# ---------------------------------------------------------------------------

def _encode_event(
    writer: _Writer, table: _StringTable, event: SimulationEvent
) -> None:
    kind = _EVENT_KINDS.get(type(event))
    mark = len(writer.buffer)
    try:
        if kind is None:
            raise _Unencodable(f"unknown event {type(event).__name__}")
        writer.u8(kind)
        writer.f64(event.time)
        if isinstance(event, FactInjection):
            writer.u32(table.intern(event.address))
            writer.u8(1 if event.remember else 0)
            writer.u32(len(event.facts))
            for fact in event.facts:
                _encode_fact(writer, table, fact)
        elif isinstance(event, FactRetraction):
            writer.u32(table.intern(event.address))
            writer.u32(len(event.facts))
            for fact in event.facts:
                _encode_fact(writer, table, fact)
        elif isinstance(event, LinkDown):
            writer.u32(table.intern(event.source))
            writer.u32(table.intern(event.destination))
            writer.u8(1 if event.retract else 0)
        elif isinstance(event, LinkUp):
            writer.u32(table.intern(event.source))
            writer.u32(table.intern(event.destination))
            writer.u32(len(event.facts))
            for fact in event.facts:
                _encode_fact(writer, table, fact)
        elif isinstance(event, NodeCrash):
            writer.u32(table.intern(event.address))
            writer.u8(1 if event.clear_state else 0)
        elif isinstance(event, NodeRecover):
            writer.u32(table.intern(event.address))
            writer.u8(1 if event.reinject else 0)
        elif isinstance(event, SoftStateRefresh):
            pass
        elif isinstance(event, RefreshHorizon):
            writer.f64(event.horizon)
        elif isinstance(event, RefreshTimerFire):
            writer.u32(table.intern(event.address))
        elif isinstance(event, MessageDelivery):
            _encode_message(writer, table, event.message)
        elif isinstance(event, QueryArrival):
            writer.u32(table.intern(event.address))
            writer.u32(table.intern(event.relation))
            writer.u32(table.intern(event.mode))
            writer.u64(event.draw)
            writer.u32(event.pool)
            writer.u8(1 if event.condensed else 0)
            # client is -1 for open-loop arrivals; shifted by one to stay
            # in unsigned range.
            writer.u64(event.client + 1)
            writer.u64(event.arrival_id)
            writer.u32(event.attempt)
            writer.f64(event.deadline)
            writer.f64(event.think)
        else:  # QueryTimeout
            writer.u64(event.query_id)
            writer.u64(event.request_id)
    except _Unencodable:
        del writer.buffer[mark:]
        writer.u8(_KIND_PICKLE)
        writer.blob(pickle.dumps(event, protocol=pickle.HIGHEST_PROTOCOL))


def _decode_event(reader: _Reader, strings: List[str]) -> SimulationEvent:
    kind = reader.u8()
    if kind == _KIND_PICKLE:
        return pickle.loads(reader.blob())
    time = reader.f64()
    if kind == 1:
        address = strings[reader.u32()]
        remember = bool(reader.u8())
        facts = tuple(_decode_fact(reader, strings) for _ in range(reader.u32()))
        return FactInjection(time=time, address=address, facts=facts, remember=remember)
    if kind == 2:
        address = strings[reader.u32()]
        facts = tuple(_decode_fact(reader, strings) for _ in range(reader.u32()))
        return FactRetraction(time=time, address=address, facts=facts)
    if kind == 3:
        source = strings[reader.u32()]
        destination = strings[reader.u32()]
        return LinkDown(
            time=time, source=source, destination=destination, retract=bool(reader.u8())
        )
    if kind == 4:
        source = strings[reader.u32()]
        destination = strings[reader.u32()]
        facts = tuple(_decode_fact(reader, strings) for _ in range(reader.u32()))
        return LinkUp(time=time, source=source, destination=destination, facts=facts)
    if kind == 5:
        return NodeCrash(time=time, address=strings[reader.u32()], clear_state=bool(reader.u8()))
    if kind == 6:
        return NodeRecover(time=time, address=strings[reader.u32()], reinject=bool(reader.u8()))
    if kind == 7:
        return SoftStateRefresh(time=time)
    if kind == 8:
        return MessageDelivery(time=time, message=_decode_message_body(reader, strings))
    if kind == 9:
        return QueryTimeout(time=time, query_id=reader.u64(), request_id=reader.u64())
    if kind == 10:
        address = strings[reader.u32()]
        relation = strings[reader.u32()]
        mode = strings[reader.u32()]
        return QueryArrival(
            time=time,
            address=address,
            relation=relation,
            mode=mode,
            draw=reader.u64(),
            pool=reader.u32(),
            condensed=bool(reader.u8()),
            client=reader.u64() - 1,
            arrival_id=reader.u64(),
            attempt=reader.u32(),
            deadline=reader.f64(),
            think=reader.f64(),
        )
    if kind == 11:
        return RefreshHorizon(time=time, horizon=reader.f64())
    if kind == 12:
        return RefreshTimerFire(time=time, address=strings[reader.u32()])
    raise ValueError(f"unknown event kind {kind} in coordination frame")


# ---------------------------------------------------------------------------
# Codec surface
# ---------------------------------------------------------------------------

def _seal_frame(table: _StringTable, body: _Writer) -> bytes:
    """Assemble a frame and deflate it when that actually saves bytes.

    The leading byte says which shape follows: ``0`` raw, ``1`` zlib.
    """
    frame = table.emit() + bytes(body.buffer)
    if len(frame) >= COMPRESS_MIN_BYTES:
        packed = zlib.compress(frame, 6)
        if len(packed) < len(frame):
            return b"\x01" + packed
    return b"\x00" + frame


def _open_frame(data: bytes) -> _Reader:
    payload = bytes(data[1:])
    if data[0:1] == b"\x01":
        payload = zlib.decompress(payload)
    return _Reader(payload)


class BinaryCodec:
    """The compact frame codec (``transport="binary"`` / ``"shm"``)."""

    name = "binary"

    def encode_exports(self, exports) -> bytes:
        body = _Writer()
        table = _StringTable()
        body.u32(len(exports))
        for deliver_at, message in exports:
            body.f64(deliver_at)
            _encode_message(body, table, message)
        return _seal_frame(table, body)

    def decode_exports(self, data: bytes) -> List[Tuple[float, object]]:
        reader = _open_frame(data)
        strings = _StringTable.parse(reader)
        exports = []
        for _ in range(reader.u32()):
            deliver_at = reader.f64()
            exports.append((deliver_at, _decode_message_body(reader, strings)))
        return exports

    def encode_events(self, batch) -> bytes:
        body = _Writer()
        table = _StringTable()
        body.u32(len(batch))
        for event, stamp, owned in batch:
            body.u64(stamp)
            body.u8(1 if owned else 0)
            _encode_event(body, table, event)
        return _seal_frame(table, body)

    def decode_events(self, data: bytes) -> List[Tuple[SimulationEvent, int, bool]]:
        reader = _open_frame(data)
        strings = _StringTable.parse(reader)
        batch = []
        for _ in range(reader.u32()):
            stamp = reader.u64()
            owned = bool(reader.u8())
            batch.append((_decode_event(reader, strings), stamp, owned))
        return batch


class PickleCodec:
    """One pickle per payload: the legacy transport, kept as the measurable
    baseline (and the fallback for payloads outside the wire vocabulary)."""

    name = "pickle"

    @staticmethod
    def _dumps(payload) -> bytes:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    def encode_exports(self, exports) -> bytes:
        return self._dumps(list(exports))

    def decode_exports(self, data: bytes):
        return pickle.loads(data)

    def encode_events(self, batch) -> bytes:
        return self._dumps(list(batch))

    def decode_events(self, data: bytes):
        return pickle.loads(data)


def make_codec(transport: str):
    """The codec for *transport* (``"shm"`` frames are binary frames)."""
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    if transport == "pickle":
        return PickleCodec()
    return BinaryCodec()


# ---------------------------------------------------------------------------
# Shared-memory ring
# ---------------------------------------------------------------------------

_ring_names = _counter()


def _attach_segment(name: str):
    from multiprocessing import resource_tracker, shared_memory

    # Attached segments are owned (and unlinked) by the coordinator; keep
    # the attach from registering with the resource tracker at all, so
    # nothing double-unlinks (or double-unregisters) them at exit.  Python
    # 3.13 exposes ``track=False`` for this; registering-then-unregistering
    # is not equivalent when processes share one tracker.
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


class SharedMemoryRing:
    """A single-producer single-consumer ring buffer for large frames.

    The worker protocol is strict request/reply, so each pipe direction has
    at most one frame outstanding: the producer may reuse any region the
    consumer has already read, which reduces synchronization to the pipe
    message itself — :meth:`write` returns the ``(offset, length)``
    descriptor that crosses the pipe *after* the bytes are in place, and the
    consumer copies them out on receipt.  Frames larger than the ring fall
    back to the pipe (``write`` returns ``None``).
    """

    def __init__(
        self,
        name: Optional[str] = None,
        capacity: int = 1 << 20,
        create: bool = False,
    ) -> None:
        from multiprocessing import shared_memory

        if create:
            # Names only need to be unique per machine: pid plus a process
            # counter, no randomness (determinism invariant INV002).
            while True:
                candidate = name or f"repro_ring_{os.getpid()}_{next(_ring_names)}"
                try:
                    self._segment = shared_memory.SharedMemory(
                        name=candidate, create=True, size=capacity
                    )
                    break
                except FileExistsError:  # pragma: no cover - stale segment
                    if name is not None:
                        raise
            self._owner = True
        else:
            if name is None:
                raise ValueError("attaching to a ring requires its name")
            self._segment = _attach_segment(name)
            self._owner = False
        self.capacity = self._segment.size
        self._cursor = 0

    @property
    def name(self) -> str:
        return self._segment.name

    def write(self, data: bytes) -> Optional[Tuple[int, int]]:
        """Place *data* in the ring; returns its descriptor, or ``None`` when
        the frame is larger than the whole ring (pipe fallback)."""
        length = len(data)
        if length > self.capacity:
            return None
        offset = self._cursor
        if offset + length > self.capacity:
            offset = 0  # wrap: the reader consumed the previous frame already
        self._segment.buf[offset : offset + length] = data
        self._cursor = offset + length
        return (offset, length)

    def read(self, offset: int, length: int) -> bytes:
        return bytes(self._segment.buf[offset : offset + length])

    def close(self) -> None:
        try:
            self._segment.close()
            if self._owner:
                self._segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
