"""Simulation statistics: the metrics of the paper's evaluation.

Two headline metrics (Section 6):

* **query completion time** — the simulated time at which the distributed
  fixpoint is reached (no messages in flight, every node idle);
* **bandwidth usage** — "the total combined bandwidth usage across all
  nodes", i.e. the sum of the sizes of every message sent.

Per-node statistics additionally break down CPU time, message counts and the
bytes attributable to security envelopes and provenance annotations, which
the harness uses to explain *where* the SeNDlog / SeNDlogProv overheads come
from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Union

from repro.net.address import Address
from repro.net.message import (
    AntiDelta,
    Message,
    MessageBatch,
    QueryRequest,
    QueryResponse,
)

WireMessage = Union[Message, MessageBatch, QueryRequest, QueryResponse, AntiDelta]


def latency_bucket(seconds: float) -> int:
    """Map a simulated duration onto an integer power-of-two microsecond bucket.

    Bucket ``b`` covers durations in ``[2**(b-1), 2**b)`` microseconds
    (bucket 0 is "under a microsecond").  The mapping goes through an
    integer microsecond count, so the histograms built from it are pure
    integer statistics — part of the serial-vs-sharded byte-identical
    equality contract — while percentile estimates derived from them
    (see :mod:`repro.service.slo`) stay within a factor of two of the
    true value at any scale from microseconds to hours.
    """
    return int(seconds * 1_000_000).bit_length()


def bucket_upper_ms(bucket: int) -> float:
    """The inclusive upper edge of *bucket*, in milliseconds."""
    if bucket <= 0:
        return 0.001
    return (1 << bucket) / 1000.0


def bucket_percentile(histogram: Dict[int, int], fraction: float) -> float:
    """The *fraction*-quantile latency (milliseconds) of a bucket histogram.

    Conservative: reports the upper edge of the bucket containing the
    quantile rank, so an SLO built on it can only over-estimate latency.
    Returns 0.0 for an empty histogram.
    """
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    rank = max(1, math.ceil(fraction * total))
    seen = 0
    for bucket in sorted(histogram):
        seen += histogram[bucket]
        if seen >= rank:
            return bucket_upper_ms(bucket)
    return bucket_upper_ms(max(histogram))


@dataclass
class NodeStats:
    """Counters for one node.

    ``messages_sent`` counts wire messages (a batch is one message);
    ``tuples_sent`` counts the tuples they carried.  ``batch_sizes`` is the
    tuples-per-batch histogram for batched sends (size -> batch count).

    Provenance query traffic is real traffic — it is included in
    ``messages_sent`` / ``bytes_sent`` — and additionally itemized:
    ``query_messages_sent`` / ``query_bytes_sent`` attribute the wire
    messages this node shipped for the query plane (requests it issued,
    responses it answered), while ``query_bytes_charged`` attributes every
    byte of query traffic — requests *and* the responses they provoked — to
    the node that *issued* the query, the way the paper's Section 6 would
    bill a traceback to its asker.
    """

    address: Address
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    security_bytes_sent: int = 0
    provenance_bytes_sent: int = 0
    batches_sent: int = 0
    tuples_sent: int = 0
    tuples_received: int = 0
    queries_issued: int = 0
    query_messages_sent: int = 0
    query_bytes_sent: int = 0
    query_bytes_charged: int = 0
    #: Query service plane (repro.service): arrivals this node's admission
    #: control turned away (each denial, retries included), arrivals
    #: permanently dropped unserved (drop policy, retry exhaustion, a
    #: crashed node or an unresolvable root), and queries that ran to
    #: completion.  All integers, all part of the cross-backend equality
    #: contract.
    queries_rejected: int = 0
    queries_shed: int = 0
    queries_completed: int = 0
    #: Result-cache counters for closures this node served: hits, misses,
    #: and entries discarded (provenance epoch moved on, TTL elapsed, or
    #: LRU eviction).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    facts_derived: int = 0
    facts_stored: int = 0
    facts_retracted: int = 0
    #: Dynamics ledger (one-fixpoint deletions and the timer-wheel refresh
    #: plane): tuples this node revived because an alternative derivation
    #: survived a retraction cascade; DRed anti-delta wire messages/bytes it
    #: shipped (also included in ``messages_sent`` / ``bytes_sent``);
    #: first-hop wire messages/bytes its refresh waves originated (likewise
    #: included in the totals); and refresh-timer fire events it handled.
    #: All integers on simulated time — part of the cross-backend equality
    #: contract.
    rederivations: int = 0
    anti_delta_messages: int = 0
    anti_delta_bytes: int = 0
    refresh_messages: int = 0
    refresh_bytes: int = 0
    timer_events: int = 0
    #: Offline-archive storage tiers (gauges refreshed at snapshot points —
    #: kernel expiry sweeps and sharded stats requests): bytes of provenance
    #: resident in memory, cumulative bytes written to the spill log, and
    #: entries read back from it.  Zero spill under the in-memory archive.
    provenance_bytes_resident: int = 0
    provenance_bytes_spilled: int = 0
    spill_reads: int = 0
    cpu_seconds: float = 0.0
    busy_until: float = 0.0
    batch_sizes: Dict[int, int] = field(default_factory=dict)
    #: Integer histograms (bucket -> count, buckets per :func:`latency_bucket`)
    #: of completed service-query latencies this node issued, and of the age
    #: of cache entries at the moment they were served.  Percentiles are
    #: *derived* from these (repro.service.slo), so the recorded statistic
    #: itself stays byte-identical across backends.
    query_latency_buckets: Dict[int, int] = field(default_factory=dict)
    cache_staleness_buckets: Dict[int, int] = field(default_factory=dict)

    def record_send(self, message: WireMessage) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes()
        self.security_bytes_sent += message.security_bytes
        self.provenance_bytes_sent += message.provenance_bytes
        count = message.tuple_count
        self.tuples_sent += count
        if isinstance(message, MessageBatch):
            self.batches_sent += 1
            self.batch_sizes[count] = self.batch_sizes.get(count, 0) + 1
        elif isinstance(message, (QueryRequest, QueryResponse)):
            self.query_messages_sent += 1
            self.query_bytes_sent += message.size_bytes()
        elif isinstance(message, AntiDelta):
            self.anti_delta_messages += 1
            self.anti_delta_bytes += message.size_bytes()

    def record_receive(self, message: WireMessage) -> None:
        self.messages_received += 1
        self.bytes_received += message.size_bytes()
        self.tuples_received += message.tuple_count

    def merge(self, other: "NodeStats") -> None:
        """Fold *other*'s counters into this record (same node, two sources).

        Used when reassembling per-shard statistics into one run record and
        when aggregating repeated runs of one sweep point.  Counters add;
        ``busy_until`` — an instant, not a quantity — takes the latest.
        """
        if other.address != self.address:
            raise ValueError(
                f"cannot merge stats of node {other.address!r} into node "
                f"{self.address!r}"
            )
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.security_bytes_sent += other.security_bytes_sent
        self.provenance_bytes_sent += other.provenance_bytes_sent
        self.batches_sent += other.batches_sent
        self.tuples_sent += other.tuples_sent
        self.tuples_received += other.tuples_received
        self.queries_issued += other.queries_issued
        self.query_messages_sent += other.query_messages_sent
        self.query_bytes_sent += other.query_bytes_sent
        self.query_bytes_charged += other.query_bytes_charged
        self.queries_rejected += other.queries_rejected
        self.queries_shed += other.queries_shed
        self.queries_completed += other.queries_completed
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_invalidations += other.cache_invalidations
        self.facts_derived += other.facts_derived
        self.facts_stored += other.facts_stored
        self.facts_retracted += other.facts_retracted
        self.rederivations += other.rederivations
        self.anti_delta_messages += other.anti_delta_messages
        self.anti_delta_bytes += other.anti_delta_bytes
        self.refresh_messages += other.refresh_messages
        self.refresh_bytes += other.refresh_bytes
        self.timer_events += other.timer_events
        # Each node's archive lives on exactly one kernel, so the tier
        # gauges are nonzero in at most one source and adding is exact.
        self.provenance_bytes_resident += other.provenance_bytes_resident
        self.provenance_bytes_spilled += other.provenance_bytes_spilled
        self.spill_reads += other.spill_reads
        self.cpu_seconds += other.cpu_seconds
        self.busy_until = max(self.busy_until, other.busy_until)
        for size, count in other.batch_sizes.items():
            self.batch_sizes[size] = self.batch_sizes.get(size, 0) + count
        for bucket, count in other.query_latency_buckets.items():
            self.query_latency_buckets[bucket] = (
                self.query_latency_buckets.get(bucket, 0) + count
            )
        for bucket, count in other.cache_staleness_buckets.items():
            self.cache_staleness_buckets[bucket] = (
                self.cache_staleness_buckets.get(bucket, 0) + count
            )


@dataclass
class NetworkStats:
    """Aggregated statistics for one simulation run."""

    nodes: Dict[Address, NodeStats] = field(default_factory=dict)
    completion_time: float = 0.0
    total_messages: int = 0
    total_events: int = 0
    #: Messages addressed to a node that does not exist; they are dropped
    #: without fabricating per-node statistics for the phantom address.
    messages_dropped: int = 0
    #: Messages lost to network dynamics: shipped on a failed link, or
    #: arriving at a crashed node.  The sender still paid for the bytes.
    messages_lost: int = 0
    #: Coordination ledger of the sharded backend (zero under serial, where
    #: there is nothing to coordinate).  All four counters are deterministic
    #: — identical between ``shard_mode="inline"`` and ``"processes"`` runs
    #: of the same workload — which is what makes the coordination floor
    #: measurable on a single-CPU box.  ``coordination_rounds`` counts
    #: coordinator↔worker request/reply round-trips on the hot path (drain
    #: flushes and window grants); ``coordination_bytes`` the frame bytes
    #: those round-trips carried; ``windows_executed`` the window commands
    #: issued; ``windows_coalesced`` the *extra* whole window-widths covered
    #: by multi-window leases (pipelined mode's one-round-trip runs of
    #: export-empty windows).
    coordination_rounds: int = 0
    coordination_bytes: int = 0
    windows_executed: int = 0
    windows_coalesced: int = 0

    def node(self, address: Address) -> NodeStats:
        stats = self.nodes.get(address)
        if stats is None:
            stats = NodeStats(address=address)
            self.nodes[address] = stats
        return stats

    def merge(self, other: "NetworkStats") -> None:
        """Fold *other* into this record; *other* is left untouched.

        Per-node entries merge by address into records owned by this object
        (never adopted by reference — a later merge must not mutate the
        source run's statistics); run-level counters add;
        ``completion_time`` — the latest instant any node was busy — takes
        the maximum.  This is how the sharded backend reassembles its
        per-shard kernels' statistics into one run record, and how sweep
        aggregation folds repeated runs of one configuration together.
        """
        for address, node_stats in other.nodes.items():
            mine = self.nodes.get(address)
            if mine is None:
                mine = self.nodes[address] = NodeStats(address=address)
            mine.merge(node_stats)
        self.completion_time = max(self.completion_time, other.completion_time)
        self.total_messages += other.total_messages
        self.total_events += other.total_events
        self.messages_dropped += other.messages_dropped
        self.messages_lost += other.messages_lost
        self.coordination_rounds += other.coordination_rounds
        self.coordination_bytes += other.coordination_bytes
        self.windows_executed += other.windows_executed
        self.windows_coalesced += other.windows_coalesced

    @classmethod
    def merged(cls, parts: "Iterable[NetworkStats]") -> "NetworkStats":
        """One record folding every statistics object in *parts* together."""
        combined = cls()
        for part in parts:
            combined.merge(part)
        return combined

    # -- headline metrics -------------------------------------------------------

    def total_bytes(self) -> int:
        """Total combined bandwidth usage across all nodes, in bytes."""
        return sum(stats.bytes_sent for stats in self.nodes.values())

    def total_bandwidth_mb(self) -> float:
        """Figure 4's metric: total bandwidth in megabytes."""
        return self.total_bytes() / 1_000_000.0

    def total_cpu_seconds(self) -> float:
        return sum(stats.cpu_seconds for stats in self.nodes.values())

    def total_facts_derived(self) -> int:
        return sum(stats.facts_derived for stats in self.nodes.values())

    def total_facts_retracted(self) -> int:
        return sum(stats.facts_retracted for stats in self.nodes.values())

    def security_overhead_bytes(self) -> int:
        return sum(stats.security_bytes_sent for stats in self.nodes.values())

    # -- dynamics metrics -------------------------------------------------------

    def total_rederivations(self) -> int:
        """Tuples revived by the rederivation phase, all nodes."""
        return sum(stats.rederivations for stats in self.nodes.values())

    def total_anti_delta_messages(self) -> int:
        return sum(stats.anti_delta_messages for stats in self.nodes.values())

    def total_anti_delta_bytes(self) -> int:
        """Bytes shipped as DRed anti-deltas (included in total_bytes)."""
        return sum(stats.anti_delta_bytes for stats in self.nodes.values())

    def total_refresh_messages(self) -> int:
        return sum(stats.refresh_messages for stats in self.nodes.values())

    def total_refresh_bytes(self) -> int:
        """First-hop bytes originated by refresh waves (included in total_bytes)."""
        return sum(stats.refresh_bytes for stats in self.nodes.values())

    def total_timer_events(self) -> int:
        return sum(stats.timer_events for stats in self.nodes.values())

    # -- storage-tier metrics ---------------------------------------------------

    def total_provenance_resident_bytes(self) -> int:
        """Bytes of offline-archive provenance resident in memory, all nodes."""
        return sum(
            stats.provenance_bytes_resident for stats in self.nodes.values()
        )

    def total_provenance_spilled_bytes(self) -> int:
        """Cumulative bytes written to the spill logs, all nodes."""
        return sum(
            stats.provenance_bytes_spilled for stats in self.nodes.values()
        )

    def total_spill_reads(self) -> int:
        """Archived entries read back from the spill logs, all nodes."""
        return sum(stats.spill_reads for stats in self.nodes.values())

    def provenance_overhead_bytes(self) -> int:
        return sum(stats.provenance_bytes_sent for stats in self.nodes.values())

    # -- query metrics ----------------------------------------------------------

    def total_query_messages(self) -> int:
        """Wire messages shipped by the provenance query plane."""
        return sum(stats.query_messages_sent for stats in self.nodes.values())

    def total_query_bytes(self) -> int:
        """Bytes shipped by the provenance query plane (included in total_bytes)."""
        return sum(stats.query_bytes_sent for stats in self.nodes.values())

    def total_queries_issued(self) -> int:
        return sum(stats.queries_issued for stats in self.nodes.values())

    # -- query service-plane metrics --------------------------------------------

    def total_queries_rejected(self) -> int:
        return sum(stats.queries_rejected for stats in self.nodes.values())

    def total_queries_shed(self) -> int:
        return sum(stats.queries_shed for stats in self.nodes.values())

    def total_queries_completed(self) -> int:
        return sum(stats.queries_completed for stats in self.nodes.values())

    def total_cache_hits(self) -> int:
        return sum(stats.cache_hits for stats in self.nodes.values())

    def total_cache_misses(self) -> int:
        return sum(stats.cache_misses for stats in self.nodes.values())

    def total_cache_invalidations(self) -> int:
        return sum(stats.cache_invalidations for stats in self.nodes.values())

    def cache_hit_ratio(self) -> float:
        """Fraction of closure lookups the result cache answered (0.0 when idle)."""
        hits = self.total_cache_hits()
        lookups = hits + self.total_cache_misses()
        return hits / lookups if lookups else 0.0

    def query_latency_histogram(self) -> Dict[int, int]:
        """Aggregated service-query latency buckets (bucket -> completions)."""
        histogram: Dict[int, int] = {}
        for stats in self.nodes.values():
            for bucket, count in stats.query_latency_buckets.items():
                histogram[bucket] = histogram.get(bucket, 0) + count
        return dict(sorted(histogram.items()))

    def cache_staleness_histogram(self) -> Dict[int, int]:
        """Aggregated served-entry age buckets (bucket -> cache hits)."""
        histogram: Dict[int, int] = {}
        for stats in self.nodes.values():
            for bucket, count in stats.cache_staleness_buckets.items():
                histogram[bucket] = histogram.get(bucket, 0) + count
        return dict(sorted(histogram.items()))

    def query_latency_ms(self, fraction: float) -> float:
        """The *fraction*-quantile completed-query latency in milliseconds."""
        return bucket_percentile(self.query_latency_histogram(), fraction)

    def maintenance_bytes(self) -> int:
        """Bytes of data-plane traffic: everything that is not query traffic.

        This is the split the paper's Section 6 motivates: provenance
        *maintenance* pays its cost up front on every shipped tuple, while
        distributed pointers defer the cost to *query* time — both sides are
        now measured in the same byte currency.
        """
        return self.total_bytes() - self.total_query_bytes()

    # -- batching metrics -------------------------------------------------------

    def total_batches(self) -> int:
        return sum(stats.batches_sent for stats in self.nodes.values())

    def total_tuples_sent(self) -> int:
        return sum(stats.tuples_sent for stats in self.nodes.values())

    def tuples_per_batch_histogram(self) -> Dict[int, int]:
        """Aggregated tuples-per-batch histogram (batch size -> batch count)."""
        histogram: Dict[int, int] = {}
        for stats in self.nodes.values():
            for size, count in stats.batch_sizes.items():
                histogram[size] = histogram.get(size, 0) + count
        return dict(sorted(histogram.items()))

    def mean_tuples_per_batch(self) -> float:
        batches = self.total_batches()
        if batches == 0:
            return 0.0
        batched_tuples = sum(
            size * count for size, count in self.tuples_per_batch_histogram().items()
        )
        return batched_tuples / batches

    def summary(self) -> Dict[str, float]:
        """A flat summary dictionary, convenient for tables and benchmarks."""
        return {
            "completion_time_s": self.completion_time,
            "bandwidth_mb": self.total_bandwidth_mb(),
            "total_messages": float(self.total_messages),
            "total_bytes": float(self.total_bytes()),
            "security_bytes": float(self.security_overhead_bytes()),
            "provenance_bytes": float(self.provenance_overhead_bytes()),
            "batches_sent": float(self.total_batches()),
            "tuples_sent": float(self.total_tuples_sent()),
            "mean_tuples_per_batch": self.mean_tuples_per_batch(),
            "query_messages": float(self.total_query_messages()),
            "query_bytes": float(self.total_query_bytes()),
            "queries_issued": float(self.total_queries_issued()),
            "queries_rejected": float(self.total_queries_rejected()),
            "queries_shed": float(self.total_queries_shed()),
            "queries_completed": float(self.total_queries_completed()),
            "cache_hits": float(self.total_cache_hits()),
            "cache_misses": float(self.total_cache_misses()),
            "cache_invalidations": float(self.total_cache_invalidations()),
            # Derived from the integer latency histogram — a pure function
            # of byte-identical inputs, so still exactly equal across
            # backends.
            "query_p50_ms": self.query_latency_ms(0.50),
            "query_p95_ms": self.query_latency_ms(0.95),
            "query_p99_ms": self.query_latency_ms(0.99),
            "messages_dropped": float(self.messages_dropped),
            "messages_lost": float(self.messages_lost),
            "facts_derived": float(self.total_facts_derived()),
            "facts_retracted": float(self.total_facts_retracted()),
            "rederivations": float(self.total_rederivations()),
            "anti_delta_messages": float(self.total_anti_delta_messages()),
            "anti_delta_bytes": float(self.total_anti_delta_bytes()),
            "refresh_messages": float(self.total_refresh_messages()),
            "refresh_bytes": float(self.total_refresh_bytes()),
            "timer_events": float(self.total_timer_events()),
            "provenance_bytes_resident": float(
                self.total_provenance_resident_bytes()
            ),
            "provenance_bytes_spilled": float(
                self.total_provenance_spilled_bytes()
            ),
            "spill_reads": float(self.total_spill_reads()),
            "cpu_seconds": self.total_cpu_seconds(),
            "coordination_rounds": float(self.coordination_rounds),
            "coordination_bytes": float(self.coordination_bytes),
            "windows_executed": float(self.windows_executed),
            "windows_coalesced": float(self.windows_coalesced),
        }


#: The backend-mechanical summary keys: they describe how a run was
#: *coordinated*, not what the simulated network did, so serial-vs-sharded
#: equivalence checks exclude exactly this set.
COORDINATION_KEYS = frozenset(
    {
        "coordination_rounds",
        "coordination_bytes",
        "windows_executed",
        "windows_coalesced",
    }
)
