"""The legacy ``Simulator`` entry point (serial backend, deprecated surface).

The discrete-event core now lives in :mod:`repro.net.kernel` as the
backend-agnostic :class:`~repro.net.kernel.SimulationKernel`; the serial
backend *is* one kernel hosting every node of the topology, and the sharded
backend (:mod:`repro.net.sharding`) runs one kernel per shard with
deterministic cross-shard synchronization.

:class:`Simulator` remains as a thin deprecated shim so the many call sites
written against the original 13-parameter constructor keep working; new code
should assemble networks through :class:`repro.api.Network`::

    from repro.api import Network

    network = Network.build(topology=50, program="best-path",
                            provenance="sendlog-prov",
                            backend="sharded", shards=4)
    result = network.run()

:class:`CostModel` and :class:`SimulationResult` are re-exported here for
backwards compatibility; their home is :mod:`repro.net.kernel`.
"""

from __future__ import annotations

import warnings

from repro.net.kernel import CostModel, SimulationKernel, SimulationResult

__all__ = ["CostModel", "SimulationKernel", "SimulationResult", "Simulator"]


class Simulator(SimulationKernel):
    """Deprecated: the original many-parameter serial-simulator entry point.

    Identical to a :class:`~repro.net.kernel.SimulationKernel` hosting every
    node.  Construct networks through ``repro.api.Network.build(...)``
    instead — it validates options, resolves provenance presets, and selects
    the execution backend (``backend="serial" | "sharded"``).
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "constructing Simulator(...) directly is deprecated; build "
            "networks through repro.api.Network.build(topology=..., "
            "program=..., provenance=..., backend=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
