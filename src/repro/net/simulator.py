"""Discrete-event network simulator.

The simulator plays the role of the testbed in the paper's evaluation: it
hosts one :class:`~repro.engine.node_engine.NodeEngine` per node of a
topology, delivers exported tuples as timestamped messages, charges per-node
CPU time for the work each delta causes (via :class:`CostModel`), and runs
until the distributed fixpoint — no messages in flight and every node idle.

By default all tuples one node ships to one destination in one delta round
travel as a single :class:`~repro.net.message.MessageBatch` (one message
header, per-tuple security/provenance bytes still itemized), the way real P2
amortizes per-packet overhead; ``batching=False`` restores the per-tuple
wire format.  Transmissions on one directed link serialize: a message starts
only after the link's previous transmission has left the wire.

Determinism: given the same topology, program and configuration the event
order is fully deterministic (ties broken by sequence numbers), so completion
time and bandwidth are exactly reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.datalog.planner import CompiledProgram
from repro.engine.node_engine import (
    EngineConfig,
    NodeEngine,
    OutgoingFact,
    ProcessingReport,
    group_outgoing,
)
from repro.engine.tuples import Fact
from repro.net.address import Address
from repro.net.link import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, Link
from repro.net.message import BatchItem, Message, MessageBatch
from repro.net.stats import NetworkStats, NodeStats, WireMessage
from repro.net.topology import Topology
from repro.security.keystore import KeyStore
from repro.security.principal import PrincipalRegistry


@dataclass(frozen=True)
class CostModel:
    """Converts a node's operation counters into simulated CPU seconds.

    The constants model a 2008-era interpreted dataflow engine (P2) running
    many processes on one machine.  Absolute values are not meant to match
    the paper's testbed; what matters for the reproduction is the *structure*:
    per-tuple relational work scales with tuple size, signing adds a fixed
    per-tuple cost, verification is much cheaper than signing (small public
    exponent), and provenance adds per-annotation plus per-byte costs.
    """

    seconds_per_fact_received: float = 0.8e-3
    seconds_per_rule_firing: float = 1.2e-3
    seconds_per_fact_derived: float = 0.8e-3
    seconds_per_fact_inserted: float = 0.4e-3
    seconds_per_payload_byte: float = 3.0e-5
    seconds_per_signature: float = 4.0e-3
    seconds_per_verification: float = 0.6e-3
    seconds_per_provenance_annotation: float = 1.0e-3
    seconds_per_provenance_byte: float = 2.5e-5

    def cpu_seconds(self, report: ProcessingReport) -> float:
        """Simulated CPU time for the work summarised in *report*."""
        return (
            report.facts_received * self.seconds_per_fact_received
            + report.rule_firings * self.seconds_per_rule_firing
            + report.facts_derived * self.seconds_per_fact_derived
            + report.facts_inserted * self.seconds_per_fact_inserted
            + report.payload_bytes_processed * self.seconds_per_payload_byte
            + report.signatures_created * self.seconds_per_signature
            + report.facts_verified * self.seconds_per_verification
            + report.provenance_annotations * self.seconds_per_provenance_annotation
            + report.provenance_bytes_computed * self.seconds_per_provenance_byte
            + report.provenance_signatures * self.seconds_per_signature
            + report.provenance_verifications * self.seconds_per_verification
        )


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    stats: NetworkStats
    engines: Dict[Address, NodeEngine]
    converged: bool
    events_processed: int

    def facts(self, relation: str) -> Dict[Address, Tuple[Fact, ...]]:
        """All stored facts of *relation*, per node."""
        return {address: engine.facts(relation) for address, engine in self.engines.items()}

    def all_facts(self, relation: str) -> Tuple[Fact, ...]:
        collected: List[Fact] = []
        for engine in self.engines.values():
            collected.extend(engine.facts(relation))
        return tuple(collected)


class Simulator:
    """Runs one program over one topology under one engine configuration."""

    def __init__(
        self,
        topology: Topology,
        compiled: CompiledProgram,
        config: EngineConfig,
        cost_model: Optional[CostModel] = None,
        keystore: Optional[KeyStore] = None,
        registry: Optional[PrincipalRegistry] = None,
        key_bits: int = 256,
        max_events: int = 5_000_000,
        default_latency: float = DEFAULT_LATENCY,
        default_bandwidth: float = DEFAULT_BANDWIDTH,
        batching: bool = True,
    ) -> None:
        self.topology = topology
        self.compiled = compiled
        self.config = config
        self.cost_model = cost_model or CostModel()
        self.max_events = max_events
        self.default_latency = default_latency
        self.default_bandwidth = default_bandwidth
        #: When True (the default, matching real P2), all tuples bound for
        #: one destination in one delta round ship as a single MessageBatch
        #: under one message header.  When False, every tuple pays its own
        #: header (the paper's Figure 4 accounting).
        self.batching = batching

        self.registry = registry or PrincipalRegistry()
        self.keystore = keystore or KeyStore(key_bits=key_bits, seed=7)
        if config.says_mode.requires_signature:
            self.keystore.create_all(topology.nodes)

        self.engines: Dict[Address, NodeEngine] = {}
        for address in topology.nodes:
            self.registry.register(address)
            self.engines[address] = NodeEngine(
                address=address,
                compiled=compiled,
                config=config,
                keystore=self.keystore,
                registry=self.registry,
            )

        self.stats = NetworkStats()
        self._queue: List[Tuple[float, int, WireMessage]] = []
        self._sequence = 0
        #: Per directed link: the time its wire is busy until.  Transmissions
        #: on one link serialize; a message starts only after the previous
        #: one has left the sender's interface.
        self._link_busy_until: Dict[Tuple[Address, Address], float] = {}

    # -- base facts -------------------------------------------------------------

    def link_facts(self) -> Dict[Address, List[Fact]]:
        """The ``link(@S, D, C)`` base tuples implied by the topology."""
        per_node: Dict[Address, List[Fact]] = {address: [] for address in self.topology.nodes}
        for link in self.topology.links:
            per_node[link.source].append(
                Fact(relation="link", values=(link.source, link.destination, link.cost))
            )
        return per_node

    # -- running ----------------------------------------------------------------

    def run(
        self,
        base_facts: Optional[Dict[Address, Iterable[Fact]]] = None,
        start_time: float = 0.0,
    ) -> SimulationResult:
        """Inject base facts at time zero and run to the distributed fixpoint."""
        injected = base_facts if base_facts is not None else self.link_facts()

        for address, facts in injected.items():
            engine = self.engines[address]
            node_stats = self.stats.node(address)
            pending: List[OutgoingFact] = []
            for fact in facts:
                start = max(start_time, node_stats.busy_until)
                result = engine.insert_base(fact, now=start)
                self._account_processing(address, start, result.report, node_stats)
                pending.extend(result.outgoing)
            # One delta round per node: everything the injected facts caused
            # ships together (one batch per destination when batching).
            self._dispatch_outgoing(address, pending, node_stats)

        events = 0
        converged = True
        while self._queue:
            events += 1
            if events > self.max_events:
                converged = False
                break
            deliver_at, _, message = heapq.heappop(self._queue)
            self._deliver(message, deliver_at)

        self.stats.total_events = events
        self.stats.completion_time = max(
            [stats.busy_until for stats in self.stats.nodes.values()] or [0.0]
        )
        return SimulationResult(
            stats=self.stats,
            engines=self.engines,
            converged=converged,
            events_processed=events,
        )

    # -- internals ----------------------------------------------------------------

    def _deliver(self, message: WireMessage, deliver_at: float) -> None:
        destination = message.destination
        engine = self.engines.get(destination)
        if engine is None:
            # A message to a nonexistent address must not fabricate a phantom
            # NodeStats entry (which would inflate receive counters and join
            # the completion-time max); it is dropped and counted globally.
            self.stats.messages_dropped += 1
            return
        node_stats = self.stats.node(destination)
        node_stats.record_receive(message)
        pending: List[OutgoingFact] = []
        for fact in message.facts():
            start = max(deliver_at, node_stats.busy_until)
            result = engine.receive(fact, now=start, provenance=fact.provenance)
            self._account_processing(destination, start, result.report, node_stats)
            pending.extend(result.outgoing)
        # One delta round per delivered message: the whole round's output
        # ships together (one batch per destination when batching).
        self._dispatch_outgoing(destination, pending, node_stats)

    def _account_processing(
        self,
        address: Address,
        start: float,
        report: ProcessingReport,
        node_stats: NodeStats,
    ) -> None:
        cpu = self.cost_model.cpu_seconds(report)
        node_stats.cpu_seconds += cpu
        node_stats.busy_until = start + cpu
        node_stats.facts_derived += report.facts_derived
        node_stats.facts_stored += report.facts_inserted

    def _next_sequence(self) -> int:
        """Per-run message sequence counter (identical runs number identically)."""
        self._sequence += 1
        return self._sequence

    def _dispatch_outgoing(
        self, source: Address, outgoing: List[OutgoingFact], node_stats: NodeStats
    ) -> None:
        if not outgoing:
            return
        send_time = node_stats.busy_until
        if self.batching:
            for destination, items in group_outgoing(outgoing).items():
                batch = MessageBatch(
                    source=source,
                    destination=destination,
                    items=tuple(
                        BatchItem(
                            fact=item.fact,
                            security_bytes=item.security_bytes,
                            provenance_bytes=item.provenance_bytes,
                        )
                        for item in items
                    ),
                    sent_at=send_time,
                    sequence=self._next_sequence(),
                )
                self._ship(source, destination, batch, send_time, node_stats)
        else:
            for item in outgoing:
                message = Message(
                    source=source,
                    destination=item.destination,
                    fact=item.fact,
                    security_bytes=item.security_bytes,
                    provenance_bytes=item.provenance_bytes,
                    sent_at=send_time,
                    sequence=self._next_sequence(),
                )
                self._ship(source, item.destination, message, send_time, node_stats)

    def _ship(
        self,
        source: Address,
        destination: Address,
        message: WireMessage,
        send_time: float,
        node_stats: NodeStats,
    ) -> None:
        """Charge the send and enqueue delivery with link-serialized timing."""
        node_stats.record_send(message)
        self.stats.total_messages += 1
        size = message.size_bytes()
        link = self.topology.link_between(source, destination)
        if link is not None:
            latency, bandwidth = link.latency, link.bandwidth
        else:
            latency, bandwidth = self.default_latency, self.default_bandwidth
        wire_seconds = size / bandwidth if bandwidth > 0 else 0.0
        key = (source, destination)
        transmit_at = max(send_time, self._link_busy_until.get(key, 0.0))
        self._link_busy_until[key] = transmit_at + wire_seconds
        deliver_at = transmit_at + wire_seconds + latency
        heapq.heappush(self._queue, (deliver_at, message.sequence, message))
