"""Wire messages and their size accounting.

Two wire formats share one size model:

* :class:`Message` carries exactly one exported tuple, matching the paper's
  per-tuple shipping ("generating a signature for each tuple");
* :class:`MessageBatch` packs every tuple bound for one destination in one
  delta round under a single ``MESSAGE_HEADER_BYTES`` of framing, the way
  real P2 amortizes per-packet overhead.

In both formats the per-tuple security envelope and provenance annotation
bytes stay itemized (signatures are still per tuple), so the bandwidth
metric of Figure 4 keeps attributing overhead to each mechanism:

    header + sum over tuples of (payload + security envelope + provenance)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.engine.tuples import Fact
from repro.net.address import Address

#: Fixed per-message framing overhead: UDP/IP headers plus P2's verbose tuple
#: framing (relation name, per-field type tags, location specifier).
MESSAGE_HEADER_BYTES = 80


@dataclass(eq=False)
class Message:
    """One tuple in flight from ``source`` to ``destination``.

    ``security_bytes`` and ``provenance_bytes`` record how much the security
    envelope (principal attribution + signature) and the piggy-backed
    provenance annotation add to the payload; they are kept separate so the
    harness can attribute bandwidth overhead to each mechanism.

    ``sequence`` is assigned by the sending :class:`~repro.net.simulator.Simulator`
    from its own per-run counter, so identical runs number their messages
    identically (a process-global counter here would leak state between runs).
    """

    source: Address
    destination: Address
    fact: Fact
    security_bytes: int = 0
    provenance_bytes: int = 0
    sent_at: float = 0.0
    sequence: int = 0

    def payload_bytes(self) -> int:
        return self.fact.payload_size()

    def size_bytes(self) -> int:
        """Total wire size of the message."""
        return (
            MESSAGE_HEADER_BYTES
            + self.payload_bytes()
            + self.security_bytes
            + self.provenance_bytes
        )

    @property
    def tuple_count(self) -> int:
        return 1

    def facts(self) -> Tuple[Fact, ...]:
        """The carried tuples in delivery order (uniform with batches)."""
        return (self.fact,)

    def __str__(self) -> str:
        return (
            f"{self.source} -> {self.destination}: {self.fact} "
            f"({self.size_bytes()} bytes)"
        )


@dataclass(eq=False, slots=True)
class BatchItem:
    """One tuple inside a :class:`MessageBatch`, with its itemized overheads."""

    fact: Fact
    security_bytes: int = 0
    provenance_bytes: int = 0


@dataclass(eq=False)
class MessageBatch:
    """All tuples one node ships to one destination in one delta round.

    The batch pays ``MESSAGE_HEADER_BYTES`` once; each item still carries its
    own security envelope and provenance annotation bytes, so per-mechanism
    bandwidth attribution is byte-identical to shipping the same tuples
    individually — only the saved per-tuple framing differs.

    ``sequence`` is assigned by the sending simulator per wire message (one
    per batch), keeping event ordering and tie-breaking deterministic.

    The byte totals are computed eagerly at construction: every batch is
    immediately measured for stats and transmission delay, and the itemized
    components never change.
    """

    source: Address
    destination: Address
    items: Tuple[BatchItem, ...]
    sent_at: float = 0.0
    sequence: int = 0
    security_bytes: int = field(init=False)
    provenance_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        security = provenance = payload = 0
        for item in self.items:
            security += item.security_bytes
            provenance += item.provenance_bytes
            payload += item.fact.payload_size()
        self.security_bytes = security
        self.provenance_bytes = provenance
        self._payload_bytes = payload
        self._size_bytes = MESSAGE_HEADER_BYTES + payload + security + provenance

    def payload_bytes(self) -> int:
        return self._payload_bytes

    def size_bytes(self) -> int:
        """Total wire size of the batch (header charged once)."""
        return self._size_bytes

    @property
    def tuple_count(self) -> int:
        return len(self.items)

    def facts(self) -> Tuple[Fact, ...]:
        """The carried tuples in delivery (FIFO) order."""
        return tuple(item.fact for item in self.items)

    def __str__(self) -> str:
        return (
            f"{self.source} -> {self.destination}: batch of {self.tuple_count} "
            f"({self.size_bytes()} bytes)"
        )
