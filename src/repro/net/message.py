"""Wire messages and their size accounting.

A message carries exactly one exported tuple between two nodes, matching the
paper's per-tuple signing ("generating a signature for each tuple").  The
message size is what the bandwidth metric of Figure 4 accumulates:

    header + tuple payload + security envelope + provenance annotation
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.tuples import Fact
from repro.net.address import Address

#: Fixed per-message framing overhead: UDP/IP headers plus P2's verbose tuple
#: framing (relation name, per-field type tags, location specifier).
MESSAGE_HEADER_BYTES = 80


@dataclass(frozen=True)
class Message:
    """One tuple in flight from ``source`` to ``destination``.

    ``security_bytes`` and ``provenance_bytes`` record how much the security
    envelope (principal attribution + signature) and the piggy-backed
    provenance annotation add to the payload; they are kept separate so the
    harness can attribute bandwidth overhead to each mechanism.

    ``sequence`` is assigned by the sending :class:`~repro.net.simulator.Simulator`
    from its own per-run counter, so identical runs number their messages
    identically (a process-global counter here would leak state between runs).
    """

    source: Address
    destination: Address
    fact: Fact
    security_bytes: int = 0
    provenance_bytes: int = 0
    sent_at: float = 0.0
    sequence: int = 0

    def payload_bytes(self) -> int:
        return self.fact.payload_size()

    def size_bytes(self) -> int:
        """Total wire size of the message."""
        return (
            MESSAGE_HEADER_BYTES
            + self.payload_bytes()
            + self.security_bytes
            + self.provenance_bytes
        )

    def __str__(self) -> str:
        return (
            f"{self.source} -> {self.destination}: {self.fact} "
            f"({self.size_bytes()} bytes)"
        )
