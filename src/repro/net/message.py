"""Wire messages and their size accounting.

Two data wire formats share one size model:

* :class:`Message` carries exactly one exported tuple, matching the paper's
  per-tuple shipping ("generating a signature for each tuple");
* :class:`MessageBatch` packs every tuple bound for one destination in one
  delta round under a single ``MESSAGE_HEADER_BYTES`` of framing, the way
  real P2 amortizes per-packet overhead.

In both formats the per-tuple security envelope and provenance annotation
bytes stay itemized (signatures are still per tuple), so the bandwidth
metric of Figure 4 keeps attributing overhead to each mechanism:

    header + sum over tuples of (payload + security envelope + provenance)

Provenance *queries* are network traffic too (the paper's central framing:
provenance is network state, queried over the network), so the in-network
query engine ships two further wire formats — :class:`QueryRequest` /
:class:`QueryResponse` — that pay the same per-message header, serialized
payload bytes and link latency as data traffic, and are attributed to a
separate ``query_bytes`` / ``query_messages`` category by the statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.engine.tuples import Fact, FactKey
from repro.net.address import Address
from repro.provenance.distributed import ProvenancePointer

#: Fixed per-message framing overhead: UDP/IP headers plus P2's verbose tuple
#: framing (relation name, per-field type tags, location specifier).
MESSAGE_HEADER_BYTES = 80


@dataclass(eq=False)
class Message:
    """One tuple in flight from ``source`` to ``destination``.

    ``security_bytes`` and ``provenance_bytes`` record how much the security
    envelope (principal attribution + signature) and the piggy-backed
    provenance annotation add to the payload; they are kept separate so the
    harness can attribute bandwidth overhead to each mechanism.

    ``sequence`` is assigned by the sending :class:`~repro.net.simulator.Simulator`
    from its own per-run counter, so identical runs number their messages
    identically (a process-global counter here would leak state between runs).
    """

    source: Address
    destination: Address
    fact: Fact
    security_bytes: int = 0
    provenance_bytes: int = 0
    sent_at: float = 0.0
    sequence: int = 0

    def payload_bytes(self) -> int:
        return self.fact.payload_size()

    def size_bytes(self) -> int:
        """Total wire size of the message."""
        return (
            MESSAGE_HEADER_BYTES
            + self.payload_bytes()
            + self.security_bytes
            + self.provenance_bytes
        )

    @property
    def tuple_count(self) -> int:
        return 1

    def facts(self) -> Tuple[Fact, ...]:
        """The carried tuples in delivery order (uniform with batches)."""
        return (self.fact,)

    def __str__(self) -> str:
        return (
            f"{self.source} -> {self.destination}: {self.fact} "
            f"({self.size_bytes()} bytes)"
        )


@dataclass(eq=False, slots=True)
class BatchItem:
    """One tuple inside a :class:`MessageBatch`, with its itemized overheads."""

    fact: Fact
    security_bytes: int = 0
    provenance_bytes: int = 0


@dataclass(eq=False)
class MessageBatch:
    """All tuples one node ships to one destination in one delta round.

    The batch pays ``MESSAGE_HEADER_BYTES`` once; each item still carries its
    own security envelope and provenance annotation bytes, so per-mechanism
    bandwidth attribution is byte-identical to shipping the same tuples
    individually — only the saved per-tuple framing differs.

    ``sequence`` is assigned by the sending simulator per wire message (one
    per batch), keeping event ordering and tie-breaking deterministic.

    The byte totals are computed eagerly at construction: every batch is
    immediately measured for stats and transmission delay, and the itemized
    components never change.
    """

    source: Address
    destination: Address
    items: Tuple[BatchItem, ...]
    sent_at: float = 0.0
    sequence: int = 0
    security_bytes: int = field(init=False)
    provenance_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        security = provenance = payload = 0
        for item in self.items:
            security += item.security_bytes
            provenance += item.provenance_bytes
            payload += item.fact.payload_size()
        self.security_bytes = security
        self.provenance_bytes = provenance
        self._payload_bytes = payload
        self._size_bytes = MESSAGE_HEADER_BYTES + payload + security + provenance

    def payload_bytes(self) -> int:
        return self._payload_bytes

    def size_bytes(self) -> int:
        """Total wire size of the batch (header charged once)."""
        return self._size_bytes

    @property
    def tuple_count(self) -> int:
        return len(self.items)

    def facts(self) -> Tuple[Fact, ...]:
        """The carried tuples in delivery (FIFO) order."""
        return tuple(item.fact for item in self.items)

    def __str__(self) -> str:
        return (
            f"{self.source} -> {self.destination}: batch of {self.tuple_count} "
            f"({self.size_bytes()} bytes)"
        )


@dataclass(eq=False)
class AntiDelta:
    """Base tuples retracted upstream of ``source`` (a deletion anti-delta).

    When a retraction pass at ``source`` kills a base tuple that appears in
    the support polynomial of something it had exported to ``destination``,
    the receiver must be told *now* rather than waiting out soft-state TTL
    decay.  An anti-delta carries only the dead *base-tuple keys* (same
    serialized rendering as a fact payload, no metadata): the receiver
    prunes every monomial mentioning a dead base from its own support
    polynomials, retracts tuples whose polynomial went to zero, keeps the
    survivors (a surviving alternative derivation exists — that is a
    ``rederivation``), and ships anti-deltas of its own toward *its*
    export destinations — one distributed deletion fixpoint.

    Anti-deltas ride the same links, pay the same header and per-key
    payload bytes, and are itemized as ``anti_delta_messages`` /
    ``anti_delta_bytes`` in the statistics.  ``tuple_count`` is zero: no
    stored tuples travel, only their identities.
    """

    source: Address
    destination: Address
    keys: Tuple[FactKey, ...]
    sent_at: float = 0.0
    sequence: int = 0
    security_bytes: int = 0
    provenance_bytes: int = 0
    _size_bytes: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._size_bytes = MESSAGE_HEADER_BYTES + sum(
            key_payload_bytes(key) for key in self.keys
        )

    def payload_bytes(self) -> int:
        return self._size_bytes - MESSAGE_HEADER_BYTES

    def size_bytes(self) -> int:
        return self._size_bytes

    @property
    def tuple_count(self) -> int:
        return 0

    def facts(self) -> Tuple[Fact, ...]:
        return ()

    def __str__(self) -> str:
        return (
            f"{self.source} -> {self.destination}: anti-delta of "
            f"{len(self.keys)} keys ({self.size_bytes()} bytes)"
        )


# ---------------------------------------------------------------------------
# Provenance query traffic
# ---------------------------------------------------------------------------

#: Per-message flag bytes for query traffic (mode, condensed, authenticated).
QUERY_FLAG_BYTES = 2


def key_payload_bytes(key: FactKey) -> int:
    """Wire size of one serialized tuple key (same rendering as a fact payload)."""
    return Fact(relation=key[0], values=key[1]).payload_size()


@dataclass(frozen=True)
class QueryClosureEntry:
    """One (key, node) expansion inside a :class:`QueryResponse`.

    The responding node resolved *key* against its provenance store:
    ``is_base`` marks an input leaf, ``pointers`` carries the recorded rule
    firings (each input paired with the node holding its own provenance).
    """

    key: FactKey
    node: str
    is_base: bool
    pointers: Tuple[ProvenancePointer, ...] = ()

    def serialized_size(self) -> int:
        total = key_payload_bytes(self.key) + 1  # key + base/derived flag
        for pointer in self.pointers:
            total += len(pointer.rule_label.encode("utf-8"))
            total += len(pointer.node.encode("utf-8"))
            total += 8  # timestamp
            for input_key, origin in pointer.inputs:
                total += key_payload_bytes(input_key) + 1
                if origin is not None:
                    total += len(str(origin).encode("utf-8"))
        return total


@dataclass(eq=False)
class QueryRequest:
    """One remote pointer dereference in flight: "expand *key* for me".

    A traceback query issues one request per (key, node) pair it must
    dereference remotely; the request pays the standard message header plus
    the serialized key, travels over the same links (serialized, with
    latency) as data traffic, and is lost the same way when the link is down
    or the destination node has crashed.
    """

    source: Address
    destination: Address
    key: FactKey
    query_id: int
    request_id: int
    mode: str = "online"
    condensed: bool = False
    authenticated: bool = False
    sent_at: float = 0.0
    sequence: int = 0
    security_bytes: int = 0
    provenance_bytes: int = 0

    def payload_bytes(self) -> int:
        return key_payload_bytes(self.key)

    def size_bytes(self) -> int:
        return MESSAGE_HEADER_BYTES + self.payload_bytes() + QUERY_FLAG_BYTES

    @property
    def tuple_count(self) -> int:
        return 0

    def facts(self) -> Tuple[Fact, ...]:
        return ()

    def __str__(self) -> str:
        return (
            f"{self.source} -> {self.destination}: query#{self.query_id} "
            f"expand {self.key[0]}{self.key[1]} ({self.size_bytes()} bytes)"
        )


@dataclass(eq=False)
class QueryResponse:
    """The answer to one :class:`QueryRequest`.

    Carries the local closure of the requested key at the responding node —
    every (key, node) expansion resolvable without leaving the node — plus
    the keys the node could not vouch for.  Remote pointer inputs inside the
    entries are what the querier dereferences next.  ``annotation_bytes``
    and ``signature_bytes`` itemize the optional condensed annotation and
    the responder's signature (authenticated queries), both included in the
    wire size — and mirrored into ``provenance_bytes`` / ``security_bytes``
    so the per-mechanism bandwidth attribution covers the query plane too.
    """

    source: Address
    destination: Address
    query_id: int
    request_id: int
    key: FactKey
    entries: Tuple[QueryClosureEntry, ...] = ()
    missing: Tuple[FactKey, ...] = ()
    annotation: Optional[object] = None
    annotation_bytes: int = 0
    signature: Optional[bytes] = None
    sent_at: float = 0.0
    sequence: int = 0
    security_bytes: int = 0
    provenance_bytes: int = 0
    _size_bytes: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        payload = key_payload_bytes(self.key)
        for entry in self.entries:
            payload += entry.serialized_size()
        for key in self.missing:
            payload += key_payload_bytes(key)
        payload += self.annotation_bytes + self.signature_bytes()
        self._size_bytes = MESSAGE_HEADER_BYTES + payload + QUERY_FLAG_BYTES
        # The security envelope and provenance annotation of a response are
        # attributed like their data-plane counterparts.
        self.security_bytes = self.signature_bytes()
        self.provenance_bytes = self.annotation_bytes

    def signature_bytes(self) -> int:
        return len(self.signature) if self.signature is not None else 0

    def payload_bytes(self) -> int:
        return self._size_bytes - MESSAGE_HEADER_BYTES

    def size_bytes(self) -> int:
        return self._size_bytes

    @property
    def tuple_count(self) -> int:
        return 0

    def facts(self) -> Tuple[Fact, ...]:
        return ()

    def signed_payload(self) -> bytes:
        """Canonical bytes the responding principal signs (authenticated mode).

        Binds the answer's full substance — every pointer's rule label,
        firing node, timestamp and origin-annotated inputs, the missing
        list, the shipped annotation and both endpoints — so a relay cannot
        rewrite who derived what from whom without breaking the signature.
        """
        def render_pointer(pointer) -> str:
            inputs = ",".join(
                f"{k[0]}{k[1]}@{origin or ''}" for k, origin in pointer.inputs
            )
            return (
                f"{pointer.rule_label}@{pointer.node}@{pointer.timestamp!r}"
                f"({inputs})"
            )

        entries = ";".join(
            f"{e.key[0]}{e.key[1]}|{int(e.is_base)}|"
            + "+".join(render_pointer(p) for p in e.pointers)
            for e in self.entries
        )
        missing = ";".join(f"{k[0]}{k[1]}" for k in self.missing)
        annotation = "" if self.annotation is None else str(self.annotation)
        return (
            f"{self.source}|{self.destination}|{self.query_id}|{self.request_id}|"
            f"{self.key[0]}{self.key[1]}|{entries}|{missing}|{annotation}"
        ).encode("utf-8")

    def __str__(self) -> str:
        return (
            f"{self.source} -> {self.destination}: query#{self.query_id} "
            f"{len(self.entries)} entries ({self.size_bytes()} bytes)"
        )


#: Wire messages belonging to the provenance query plane.
QueryMessage = (QueryRequest, QueryResponse)

#: Stable wire-format tags for the sharded backend's coordination frames
#: (:mod:`repro.net.transport`).  Appending new kinds is safe; renumbering
#: existing ones would silently corrupt mixed-version coordination, so the
#: mapping lives next to the message definitions it tags.
WIRE_KINDS = {
    Message: 0,
    MessageBatch: 1,
    QueryRequest: 2,
    QueryResponse: 3,
    AntiDelta: 4,
}
