"""Typed simulation events and the event scheduler.

The simulator used to keep a bare heap of ``(time, sequence, message)``
entries, which hard-wired it to one kind of event: message delivery.  The
scenarios of a provenance-aware *dynamic* network need more — links fail and
recover, nodes crash and come back, base facts are injected and retracted
mid-run — so the event loop is factored into an explicit, reusable
:class:`EventScheduler` over a small algebra of typed events.

Ordering is fully deterministic — and, crucially for the sharded execution
backend, *backend-independent*: events fire in ``(time, priority, rank)``
order, where control events (topology and fact changes) carry a lower
priority number than message deliveries so that, at equal timestamps, the
network state changes *before* traffic is processed.  The tie-break ``rank``
is derived from event *content*, not from scheduling history:

* a :class:`MessageDelivery` ranks by ``(sender address, the sender's
  per-node message sequence number)`` — per-link FIFO is preserved (a link's
  delivery times are non-decreasing and same-instant messages order by send
  order), and two kernels that ship the same messages rank them identically
  no matter which one scheduled the delivery;
* other control events rank by an externally assigned ``stamp`` (the order
  the driving code scheduled them, identical across backends), with
  :class:`QueryTimeout` ranking after same-instant stamped control events by
  its ``(query id, request id)`` content.

This is what lets the sharded backend merge cross-shard deliveries into each
shard's queue at window barriers and still replay the exact serial order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.tuples import Fact
from repro.net.address import Address
from repro.net.stats import WireMessage

#: Control events (link / node / fact changes) fire before deliveries that
#: share their timestamp.
CONTROL_PRIORITY = 0
DELIVERY_PRIORITY = 1


@dataclass(eq=False, slots=True)
class SimulationEvent:
    """Base class: something that happens at one instant of simulated time."""

    time: float

    #: Tie-break rank at equal time; see module docstring.
    priority = CONTROL_PRIORITY


@dataclass(eq=False, slots=True)
class MessageDelivery(SimulationEvent):
    """A wire message (single tuple or batch) arriving at its destination."""

    message: WireMessage

    priority = DELIVERY_PRIORITY


@dataclass(eq=False, slots=True)
class LinkDown(SimulationEvent):
    """A directed link fails.

    Messages shipped on the link after this instant are lost; messages
    already in flight still arrive (they left the interface before the
    failure).  When ``retract`` is true the source node also retracts its
    matching ``link`` base tuples, cascading invalidation through everything
    locally derived from them.
    """

    source: Address
    destination: Address
    retract: bool = True


@dataclass(eq=False, slots=True)
class LinkUp(SimulationEvent):
    """A directed link (re)appears.

    ``facts`` are the base tuples to inject at the source; when empty, the
    tuples retracted by the matching :class:`LinkDown` are re-injected.
    """

    source: Address
    destination: Address
    facts: Tuple[Fact, ...] = ()


@dataclass(eq=False, slots=True)
class NodeCrash(SimulationEvent):
    """A node fails, losing its soft state.

    While down the node neither processes deliveries nor accepts injections.
    With ``clear_state`` (the default) its database, aggregate state and
    in-memory provenance are wiped — only the offline provenance archive,
    which models a persistent log, survives the crash.
    """

    address: Address
    clear_state: bool = True


@dataclass(eq=False, slots=True)
class NodeRecover(SimulationEvent):
    """A crashed node comes back.

    With ``reinject`` the node's original base facts (minus tuples for links
    currently down) are re-inserted, modelling the application re-asserting
    its soft state after a restart.
    """

    address: Address
    reinject: bool = True


@dataclass(eq=False, slots=True)
class FactInjection(SimulationEvent):
    """Base tuples asserted at a node by the local application."""

    address: Address
    facts: Tuple[Fact, ...]
    #: Remember the tuples for later re-injection (node recovery, soft-state
    #: refresh rounds).  Refresh traffic re-injects without re-remembering.
    remember: bool = True


@dataclass(eq=False, slots=True)
class SoftStateRefresh(SimulationEvent):
    """Every live node re-asserts its remembered base tuples.

    Expansion happens when the event *fires*, not when it is scheduled, so
    same-instant link failures, crashes and retractions (control events with
    earlier sequence numbers) are visible: a dead link's tuple is not
    re-asserted.  Re-asserting an unchanged tuple only refreshes its TTL at
    the owner — derived state is re-derived (and re-shipped) when it was
    lost or decayed, so refresh rounds that should rebuild remote state are
    spaced beyond the soft-state lifetime.
    """


@dataclass(eq=False, slots=True)
class QueryTimeout(SimulationEvent):
    """A provenance query gives up on one outstanding request.

    Scheduled when the request is shipped; when the matching
    :class:`~repro.net.message.QueryResponse` arrives first the query
    engine sets ``cancelled`` and the scheduler discards the entry without
    dispatching it (no wasted event-budget).  Otherwise — the request or
    the response was lost to a failed link or a crashed node — the queried
    key is reported missing and the query completes with
    ``complete=False``, which is how in-network provenance queries fail
    *partially* instead of hanging forever.
    """

    query_id: int = 0
    request_id: int = 0
    #: Lazy cancellation flag honoured by :class:`EventScheduler`.
    cancelled: bool = False


@dataclass(eq=False, slots=True)
class FactRetraction(SimulationEvent):
    """Base tuples withdrawn at a node.

    Retraction deletes the tuple and cascades through everything the node
    derived from it (provenance invalidation); remote copies are *not*
    chased — they decay through soft-state expiry, the paper's repair story.
    """

    address: Address
    facts: Tuple[Fact, ...]


@dataclass(eq=False, slots=True)
class RefreshHorizon(SimulationEvent):
    """The timer-wheel refresh plane may advance to ``horizon``.

    Under ``refresh_mode="wheel"`` per-tuple refresh timers live in
    hierarchical timer wheels (:mod:`repro.net.timers`), *not* in the event
    heap — a network at rest holds no self-re-arming events, so
    ``run_until_idle`` still quiesces.  Timers are materialized lazily: the
    kernel emits one ``RefreshHorizon`` whenever the driving code schedules
    an external event past the previous horizon (identically under every
    backend — the sharded coordinator broadcasts it, counted once on shard
    0), and the handler drains each hosted wheel up to ``horizon``,
    turning due timers into :class:`RefreshTimerFire` events at
    ``max(deadline, event.time)`` so nothing fires into the past.
    """

    horizon: float = 0.0


@dataclass(eq=False, slots=True)
class RefreshTimerFire(SimulationEvent):
    """One node's due refresh timers fire (timer-wheel refresh plane).

    Scheduled *inside* kernel processing (by the :class:`RefreshHorizon`
    handler), so like :class:`QueryTimeout` it ranks by content — the
    firing node's address — never by a kernel-local stamp; the kernel
    coalesces all timers of one node due at one instant into a single
    event, keeping the rank unique per ``(time, address)``.
    """

    address: Address = ""


@dataclass(eq=False, slots=True)
class QueryArrival(SimulationEvent):
    """One service-plane provenance query arriving at a node.

    The query service plane (:mod:`repro.service`) models an always-on
    network answering client tracebacks while maintenance traffic keeps
    flowing.  An arrival names the asking node and a *root selector* — the
    relation plus a deterministic ``draw`` in ``[0, pool)`` — resolved
    against the asker's live store when the event fires, so both backends
    (whose per-node state at any instant is identical) pick the same root
    without the workload generator ever touching worker-process engines.

    Arrivals are handled entirely on the kernel hosting ``address``: the
    admission check, the cache lookup and the query issue all happen
    kernel-side, which is what makes the service plane work in
    ``shard_mode="processes"`` where the coordinator cannot reach into a
    worker mid-run.  ``client`` is ``-1`` for open-loop (precomputed
    schedule) arrivals; closed-loop clients carry their id, their
    ``think`` time and the ``deadline`` past which they stop re-issuing.
    The ``(client, arrival_id, attempt)`` triple is unique per run and is
    the event's content-based rank (see :func:`event_rank`).
    """

    address: Address = ""
    relation: str = "bestPath"
    draw: int = 0
    pool: int = 1
    mode: str = "online"
    condensed: bool = False
    client: int = -1
    arrival_id: int = 0
    attempt: int = 0
    deadline: float = 0.0
    think: float = 0.0


def event_rank(event: SimulationEvent, stamp: Optional[int] = None) -> Tuple:
    """The content-derived tie-break rank of *event* (see module docstring).

    Ranks are only ever compared between events sharing a ``(time,
    priority)`` pair: deliveries (priority 1) rank by sender identity and
    the sender's per-node message sequence; control events (priority 0) by
    their scheduling ``stamp``, with query timeouts — the one control event
    scheduled *inside* node processing rather than by the driving code —
    ranked after stamped events by their query/request identity.
    """
    if isinstance(event, MessageDelivery):
        message = event.message
        return (str(message.source), message.sequence)
    if isinstance(event, QueryTimeout):
        return (1, event.query_id, event.request_id)
    if isinstance(event, QueryArrival):
        # Retries and closed-loop follow-ups are scheduled *inside* node
        # processing (like query timeouts), so the rank must come from the
        # arrival's identity, never a kernel-local stamp.
        return (2, event.client, event.arrival_id, event.attempt)
    if isinstance(event, RefreshTimerFire):
        # Also scheduled inside kernel processing (by the RefreshHorizon
        # handler); one event per (time, node) — the address is the rank.
        return (3, str(event.address))
    return (0, stamp if stamp is not None else 0)


class EventScheduler:
    """A deterministic priority queue of :class:`SimulationEvent`.

    Events fire in ``(time, priority, rank)`` order with a scheduling-time
    sequence number as the final fallback; the rank is derived from event
    content (see :func:`event_rank`), so two kernels scheduling the same
    events — even interleaved differently, as the sharded backend does at
    its window barriers — replay them in the same order.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Tuple, int, SimulationEvent]] = []
        self._sequence = 0
        self.events_scheduled = 0

    def _discard_cancelled(self) -> None:
        # Lazily drop events whose owner cancelled them (e.g. a QueryTimeout
        # whose response arrived) so they neither fire nor count against the
        # max_events budget.  Only front-of-heap entries are inspected; a
        # cancelled event deeper in the heap is discarded when it surfaces.
        heap = self._heap
        while heap and getattr(heap[0][-1], "cancelled", False):
            heapq.heappop(heap)

    def __len__(self) -> int:
        self._discard_cancelled()
        return len(self._heap)

    def __bool__(self) -> bool:
        self._discard_cancelled()
        return bool(self._heap)

    def schedule(self, event: SimulationEvent, stamp: Optional[int] = None) -> int:
        """Queue *event*; returns the fallback sequence number assigned.

        *stamp* orders same-instant control events; the simulation kernel
        assigns it from a backend-global counter (identical for the same
        driving code under every execution backend).  Deliveries and query
        timeouts carry their rank in their content and ignore it.
        """
        self._sequence += 1
        self.events_scheduled += 1
        heapq.heappush(
            self._heap,
            (
                event.time,
                event.priority,
                event_rank(event, stamp),
                self._sequence,
                event,
            ),
        )
        return self._sequence

    def pop(self) -> SimulationEvent:
        """Remove and return the next live event in deterministic order."""
        self._discard_cancelled()
        entry = heapq.heappop(self._heap)
        return entry[-1]

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when idle."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pending(self) -> Tuple[SimulationEvent, ...]:
        """The queued live events in fire order (non-destructive, for inspection)."""
        return tuple(
            entry[-1]
            for entry in sorted(self._heap, key=lambda e: e[:4])
            if not getattr(entry[-1], "cancelled", False)
        )

    def clear(self) -> None:
        self._heap.clear()
