"""Topology generation.

The evaluation workload inserts "link tables for N nodes with average
outdegree of three" (Section 6).  :func:`random_topology` reproduces that
workload deterministically from a seed; ring, line and grid topologies are
provided for tests, examples and the use-case scenarios.

Generated topologies are always strongly connected (a Hamiltonian-cycle
backbone is laid down before the random extra edges) so that recursive
queries reach a well-defined global fixpoint.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.net.address import Address, node_names
from repro.net.link import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, Link


@dataclass
class Topology:
    """A directed network graph of nodes and links."""

    nodes: Tuple[Address, ...]
    links: Tuple[Link, ...]

    def __post_init__(self) -> None:
        self._out: Dict[Address, List[Link]] = {}
        self._index: Dict[Tuple[Address, Address], Link] = {}
        for link in self.links:
            self._out.setdefault(link.source, []).append(link)
            self._index[(link.source, link.destination)] = link

    # -- queries --------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def link_count(self) -> int:
        return len(self.links)

    def outgoing(self, node: Address) -> Tuple[Link, ...]:
        return tuple(self._out.get(node, ()))

    def link_between(self, source: Address, destination: Address) -> Optional[Link]:
        return self._index.get((source, destination))

    def neighbors(self, node: Address) -> Tuple[Address, ...]:
        return tuple(link.destination for link in self.outgoing(node))

    def average_outdegree(self) -> float:
        if not self.nodes:
            return 0.0
        return len(self.links) / len(self.nodes)

    def is_strongly_connected(self) -> bool:
        """True when every node can reach every other node."""
        if not self.nodes:
            return True

        def reachable(start: Address, forward: bool) -> FrozenSet[Address]:
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                if forward:
                    successors = self.neighbors(current)
                else:
                    successors = tuple(
                        link.source for link in self.links if link.destination == current
                    )
                for nxt in successors:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return frozenset(seen)

        start = self.nodes[0]
        everyone = frozenset(self.nodes)
        return reachable(start, True) == everyone and reachable(start, False) == everyone

    def with_extra_links(self, links: Iterable[Link]) -> "Topology":
        return Topology(nodes=self.nodes, links=self.links + tuple(links))

    def without_links(
        self, pairs: Iterable[Tuple[Address, Address]]
    ) -> "Topology":
        """The topology minus the directed links in *pairs* (same nodes)."""
        removed = set(pairs)
        return Topology(
            nodes=self.nodes,
            links=tuple(
                link
                for link in self.links
                if (link.source, link.destination) not in removed
            ),
        )

    def redundant_links(self) -> Tuple[Link, ...]:
        """Links whose individual removal keeps the graph strongly connected.

        The dynamic-network scenarios fail one of these so that a repaired
        fixpoint still reaches every node (the interesting case: traffic
        reroutes instead of partitioning).
        """
        return tuple(
            link
            for link in self.links
            if self.without_links(
                [(link.source, link.destination)]
            ).is_strongly_connected()
        )


def random_topology(
    node_count: int,
    average_outdegree: float = 3.0,
    seed: int = 0,
    cost_range: Tuple[float, float] = (1.0, 10.0),
    latency: float = DEFAULT_LATENCY,
    bandwidth: float = DEFAULT_BANDWIDTH,
    prefix: str = "n",
) -> Topology:
    """The paper's evaluation workload: N nodes with a target average outdegree.

    A directed ring backbone guarantees strong connectivity; the remaining
    edge budget is spent on uniformly random extra edges with random integer
    costs drawn from *cost_range*.  Deterministic in *seed*.
    """
    if node_count < 2:
        raise ValueError("a topology needs at least two nodes")
    rng = random.Random(seed)
    nodes = node_names(node_count, prefix)
    links: Dict[Tuple[Address, Address], Link] = {}

    def add(source: Address, destination: Address) -> None:
        cost = float(rng.randint(int(cost_range[0]), int(cost_range[1])))
        links[(source, destination)] = Link(
            source=source,
            destination=destination,
            cost=cost,
            latency=latency,
            bandwidth=bandwidth,
        )

    # Ring backbone for strong connectivity.
    for i, source in enumerate(nodes):
        add(source, nodes[(i + 1) % node_count])

    target_links = int(round(average_outdegree * node_count))
    attempts = 0
    while len(links) < target_links and attempts < 50 * target_links:
        attempts += 1
        source = rng.choice(nodes)
        destination = rng.choice(nodes)
        if source == destination or (source, destination) in links:
            continue
        add(source, destination)

    return Topology(nodes=nodes, links=tuple(links.values()))


def ring_topology(
    node_count: int, cost: float = 1.0, bidirectional: bool = True, prefix: str = "n"
) -> Topology:
    """A simple ring, optionally bidirectional."""
    nodes = node_names(node_count, prefix)
    links: List[Link] = []
    for i, source in enumerate(nodes):
        destination = nodes[(i + 1) % node_count]
        links.append(Link(source=source, destination=destination, cost=cost))
        if bidirectional:
            links.append(Link(source=destination, destination=source, cost=cost))
    return Topology(nodes=nodes, links=tuple(links))


def line_topology(node_count: int, cost: float = 1.0, prefix: str = "n") -> Topology:
    """A bidirectional chain ``n0 - n1 - ... - n(k-1)``."""
    nodes = node_names(node_count, prefix)
    links: List[Link] = []
    for i in range(node_count - 1):
        links.append(Link(source=nodes[i], destination=nodes[i + 1], cost=cost))
        links.append(Link(source=nodes[i + 1], destination=nodes[i], cost=cost))
    return Topology(nodes=nodes, links=tuple(links))


def grid_topology(rows: int, columns: int, cost: float = 1.0, prefix: str = "n") -> Topology:
    """A bidirectional rows x columns grid."""
    nodes = node_names(rows * columns, prefix)
    links: List[Link] = []

    def index(r: int, c: int) -> int:
        return r * columns + c

    for r in range(rows):
        for c in range(columns):
            here = nodes[index(r, c)]
            if c + 1 < columns:
                right = nodes[index(r, c + 1)]
                links.append(Link(source=here, destination=right, cost=cost))
                links.append(Link(source=right, destination=here, cost=cost))
            if r + 1 < rows:
                down = nodes[index(r + 1, c)]
                links.append(Link(source=here, destination=down, cost=cost))
                links.append(Link(source=down, destination=here, cost=cost))
    return Topology(nodes=nodes, links=tuple(links))


def paper_example_topology() -> Topology:
    """The three-node example of Section 4: links a->b, a->c and b->c."""
    return Topology(
        nodes=("a", "b", "c"),
        links=(
            Link(source="a", destination="b", cost=1.0),
            Link(source="a", destination="c", cost=1.0),
            Link(source="b", destination="c", cost=1.0),
        ),
    )
